(* homc — the Homunculus command-line compiler driver.

   Subcommands:
     compile   search + train + map one built-in application to a target and
               dump the generated backend code
     compose   search several guarded applications and lower them onto ONE
               shared pipeline; differential oracle + combined feasibility
     inspect   print a platform's resource model
     datasets  summarize the synthetic dataset generators
     sweep     Fig. 7-style table-budget sweep for the KMeans classifier
     serve     replay a trace through the online serving runtime (drift
               detection + hot-swap)
     loadgen   open-loop load generation against the serving engine:
               throughput, latency percentiles, SLO gate
     check     differential conformance: random models through every
               deployment path, compared against the FP reference *)

open Cmdliner
open Homunculus_alchemy
open Homunculus_core
module Rng = Homunculus_util.Rng
module Nslkdd = Homunculus_netdata.Nslkdd
module Iot = Homunculus_netdata.Iot
module Botnet = Homunculus_netdata.Botnet
module Dataset = Homunculus_ml.Dataset
module Bo = Homunculus_bo
module Par = Homunculus_par.Par
module Resilience = Homunculus_resilience

let spec_of_app app seed =
  match app with
  | "ad" ->
      Model_spec.make ~name:"anomaly_detection" ~metric:Model_spec.F1
        ~algorithms:[ Model_spec.Dnn ]
        ~loader:(fun () ->
          let rng = Rng.create seed in
          let train, test = Nslkdd.generate_split rng () in
          Model_spec.data ~train ~test)
        ()
  | "tc" ->
      Model_spec.make ~name:"traffic_classification" ~metric:Model_spec.F1
        ~algorithms:[ Model_spec.Dnn; Model_spec.Svm; Model_spec.Tree ]
        ~loader:(fun () ->
          let rng = Rng.create seed in
          let train, test = Iot.generate_split rng () in
          Model_spec.data ~train ~test)
        ()
  | "tc-kmeans" ->
      Model_spec.make ~name:"traffic_classification" ~metric:Model_spec.V_measure
        ~algorithms:[ Model_spec.Kmeans ]
        ~loader:(fun () ->
          let rng = Rng.create seed in
          let train, test = Iot.generate_split rng () in
          Model_spec.data ~train ~test)
        ()
  | "bd" ->
      Model_spec.make ~name:"botnet_detection" ~metric:Model_spec.F1
        ~algorithms:[ Model_spec.Dnn ]
        ~loader:(fun () ->
          let rng = Rng.create seed in
          let train, test = Botnet.generate rng () in
          Model_spec.data ~train ~test)
        ()
  | other -> failwith (Printf.sprintf "unknown app %s (use ad|tc|tc-kmeans|bd)" other)

let platform_of_name = function
  | "taurus" -> Platform.taurus ()
  | "tofino" -> Platform.tofino ()
  | "fpga" -> Platform.fpga ()
  | other -> failwith (Printf.sprintf "unknown target %s (use taurus|tofino|fpga)" other)

(* Arguments *)

let app_arg =
  let doc = "Application: ad, tc, tc-kmeans, or bd." in
  Arg.(value & pos 0 string "ad" & info [] ~docv:"APP" ~doc)

let target_arg =
  let doc = "Backend target: taurus, tofino, or fpga." in
  Arg.(value & opt string "taurus" & info [ "t"; "target" ] ~docv:"TARGET" ~doc)

let seed_arg =
  let doc = "Random seed for data generation and search." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let budget_arg =
  let doc = "Total optimization evaluations (warm-up + guided)." in
  Arg.(value & opt int 25 & info [ "budget" ] ~docv:"N" ~doc)

let output_arg =
  let doc = "Write generated backend code to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel search (default: \\$(b,PAR_JOBS) or the \
     machine's core count). Also used as the optimizer's batch size, so each \
     surrogate fit proposes this many candidates for concurrent evaluation."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs jobs =
  let jobs = if jobs <= 0 then Par.recommended_jobs () else jobs in
  Par.set_default_jobs jobs;
  jobs

let prune_arg =
  let doc =
    "Prune weak DNN candidates with a successive-halving rung scheduler: \
     configurations in the bottom half at 1/4 and 1/2 of their epoch budget \
     stop early and enter the search history as partial observations. Same \
     winner quality for a fraction of the training epochs; deterministic at \
     any --jobs."
  in
  Arg.(value & flag & info [ "prune" ] ~doc)

let journal_arg =
  let doc =
    "Journal every evaluation outcome to $(docv)/journal.jsonl: an \
     append-only, checksummed, fsync'd write-ahead log. A crashed or killed \
     search can then be resumed with $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Replay recorded outcomes from the $(b,--journal) directory instead of \
     re-training them. The optimizer is re-driven with the original seed, so \
     the resumed search's history — and its winner — are bit-for-bit what an \
     uninterrupted run would have produced."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let faults_arg =
  let doc =
    "Deterministic fault plan for resilience testing: comma-separated \
     raise@K[:N] (exception on candidate K's first N attempts), nan@K:E \
     (NaN loss at epoch E), timeout@K, infeasible@K, kill@N (crash after N \
     journal records)."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN" ~doc)

let retries_arg =
  let doc =
    "Retries for transient (backend-class) evaluation failures. Divergence \
     and budget exhaustion are never retried."
  in
  Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)

let eval_budget_arg =
  let doc =
    "Per-candidate wall-clock budget in seconds (monotonic); a candidate \
     that exceeds it is recorded as an infeasible budget failure."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "eval-budget" ] ~docv:"SECONDS" ~doc)

let cost_model_arg =
  let doc =
    "Learned cost-model pre-filter for the search ($(b,on) or $(b,off), \
     default off): a random-forest feasibility/cost model trained online on \
     the exact evaluations the search pays for anyway skips training for \
     candidates it is confident are infeasible. Boundary candidates and any \
     potential winner still evaluate exactly — the final artifact is never \
     chosen on a prediction. Composes with --journal/--resume: replayed \
     candidates bypass the filter."
  in
  Arg.(value & opt string "off" & info [ "cost-model" ] ~docv:"on|off" ~doc)

let cm_margin_arg =
  let doc =
    "Cost-model decision margin: skip only when the predicted probability \
     of feasibility is below 0.5 - MARGIN. Larger is more conservative; \
     $(b,inf) disables skipping while keeping the filter's accounting."
  in
  Arg.(value & opt float 0.15 & info [ "cm-margin" ] ~docv:"MARGIN" ~doc)

let cm_min_obs_arg =
  let doc =
    "Exact evaluations the cost model observes before it starts filtering."
  in
  Arg.(value & opt int 12 & info [ "cm-min-obs" ] ~docv:"N" ~doc)

let cm_conviction_arg =
  let doc =
    "Cost-model conviction floor: below this predicted probability of \
     feasibility the would-be-winner guard is waived (the model is sure \
     enough that the candidate's predicted objective is moot)."
  in
  Arg.(value & opt float 0.02 & info [ "cm-conviction" ] ~docv:"P" ~doc)

let cost_model_of ~cost_model ~cm_margin ~cm_min_obs ~cm_conviction =
  match cost_model with
  | "off" -> None
  | "on" ->
      Some
        {
          Bo.Cost_model.default_settings with
          Bo.Cost_model.margin = cm_margin;
          min_observations = Stdlib.max 2 cm_min_obs;
          conviction = cm_conviction;
        }
  | other ->
      failwith (Printf.sprintf "unknown --cost-model %s (use on|off)" other)

(* Build the supervisor (or none, when no resilience flag was given). The
   journal handle is returned separately so the driver can close it. *)
let resilience_of ~journal_dir ~resume ~faults ~retries ~eval_budget =
  if resume && journal_dir = None then
    invalid_arg "--resume requires --journal DIR";
  if journal_dir = None && faults = None && eval_budget = None && retries = 1
  then (None, None)
  else begin
    let journal, replay =
      match journal_dir with
      | None -> (None, None)
      | Some dir ->
          if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
          let path = Filename.concat dir "journal.jsonl" in
          let replay =
            if resume then begin
              let r = Resilience.Journal.load path in
              Printf.eprintf "resume: %d journal records loaded, %d dropped\n%!"
                (Resilience.Journal.loaded r)
                (Resilience.Journal.dropped r);
              Some r
            end
            else None
          in
          (Some (Resilience.Journal.open_ path), replay)
    in
    let faults = Option.map Resilience.Faultplan.of_string faults in
    let settings =
      {
        Resilience.Supervisor.default_settings with
        Resilience.Supervisor.max_retries = retries;
        budget_s = eval_budget;
      }
    in
    ( Some (Resilience.Supervisor.create ~settings ?journal ?replay ?faults ()),
      journal )
  end

let options_of ~seed ~budget ~jobs ~prune =
  let n_init = Stdlib.max 3 (budget / 4) in
  {
    Compiler.default_options with
    Compiler.seed;
    bo_settings =
      {
        Bo.Optimizer.default_settings with
        Bo.Optimizer.n_init;
        n_iter = Stdlib.max 1 (budget - n_init);
        batch_size = resolve_jobs jobs;
      };
    prune = (if prune then Some Bo.Asha.default_settings else None);
  }

(* compile *)

(* The searched-result report, shared by [compile] and [search]: everything
   deterministic goes to stdout (so inline, resumed, and distributed runs of
   the same seed diff clean), accounting goes to stderr. *)
let print_search_result ~target ~output result =
  print_string (Report.result_summary result);
  match result.Compiler.models with
  | [ m ] -> (
      Printf.printf "\nwinning configuration: %s\n"
        (Report.config_summary m.Compiler.artifact.Evaluator.config);
      Printf.printf "\n%s\n" (Report.render_regret m.Compiler.history);
      match (m.Compiler.code, output) with
      | Some code, Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc code);
          Printf.printf "wrote %d bytes of %s code to %s\n" (String.length code)
            (if target = "tofino" then "P4" else "Spatial")
            path
      | Some code, None ->
          Printf.printf "generated %d lines of backend code (use -o to save)\n"
            (List.length (String.split_on_char '\n' code))
      | None, _ -> ())
  | _ -> ()

let compile app target seed budget jobs prune cost_model cm_margin cm_min_obs
    cm_conviction    journal_dir resume faults retries eval_budget output =
  let spec = spec_of_app app seed in
  let platform = platform_of_name target in
  let supervisor, journal =
    resilience_of ~journal_dir ~resume ~faults ~retries ~eval_budget
  in
  let options =
    {
      (options_of ~seed ~budget ~jobs ~prune) with
      Compiler.supervisor;
      cost_model = cost_model_of ~cost_model ~cm_margin ~cm_min_obs ~cm_conviction;
    }
  in
  let run () =
    let result = Compiler.generate ~options platform (Schedule.model spec) in
    print_search_result ~target ~output result;
    (* Accounting goes to stderr so an interrupted-then-resumed run's stdout
       diffs clean against an uninterrupted one: the cost model's counters
       restart on resume (replayed candidates bypass the filter) even though
       the search's stdout result is identical. *)
    List.iter
      (fun (m : Compiler.model_result) ->
        match m.Compiler.cost_stats with
        | Some s ->
            Printf.eprintf "cost model: %s\n%!" (Bo.Cost_model.stats_summary s)
        | None -> ())
      result.Compiler.models;
    (match supervisor with
    | Some sup
      when Resilience.Supervisor.replayed_count sup > 0
           || Resilience.Supervisor.failure_count sup > 0 ->
        Printf.eprintf "supervisor: %d evaluations replayed, %d failures\n%!"
          (Resilience.Supervisor.replayed_count sup)
          (Resilience.Supervisor.failure_count sup)
    | Some _ | None -> ());
    0
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Resilience.Journal.close journal)
    (fun () ->
      try run ()
      with Resilience.Faultplan.Killed n ->
        Printf.eprintf "search killed after %d journal records (simulated)\n%!"
          n;
        10)

(* search — the distributed DSE driver.

   Three modes behind one subcommand, so a worker is just another homc
   invocation (the same binary can later be launched on another machine
   against a shared coordination directory):

     homc search APP                          inline, single process
     homc search APP --coordinator DIR \
                     --workers N              coordinator + N local workers
     homc search APP --coordinator DIR \
                     --worker --worker-id I   hidden: one worker process

   Everything deterministic prints to stdout; lease/worker accounting goes
   to stderr — so for a fixed seed and -j, the coordinator run's stdout is
   byte-identical to the inline run's at any worker count, including runs
   where workers were killed mid-search. *)

module Dist = Homunculus_dist

let parse_kill_worker = function
  | None -> None
  | Some s -> (
      let bad () = failwith "bad --kill-worker (use WORKER:CLAIMS)" in
      match String.split_on_char ':' s with
      | [ i; n ] -> (
          match (int_of_string_opt i, int_of_string_opt n) with
          | Some i, Some n when i >= 0 && n >= 1 -> Some (i, n)
          | _ -> bad ())
      | _ -> bad ())

let search app target seed budget jobs coordinator workers lease_ttl
    fsync_every worker worker_id kill_worker retries eval_budget output =
  let spec = spec_of_app app seed in
  let platform = platform_of_name target in
  (* Worker-local resilience only: retries and budgets compose per process;
     the journal role is played by the coordination directory. *)
  let supervisor, _ =
    resilience_of ~journal_dir:None ~resume:false ~faults:None ~retries
      ~eval_budget
  in
  let lease_options = { Compiler.default_options with Compiler.seed; supervisor } in
  let lease_eval ~scope ~index ~config =
    Compiler.worker_eval ~options:lease_options ~platform ~specs:[ spec ]
      ~scope ~index ~config
  in
  match (worker, coordinator) with
  | true, None -> failwith "--worker requires --coordinator DIR"
  | true, Some dir -> (
      (* Worker mode: claim leases, evaluate, journal, until the done
         marker. A --kill-worker plan addressed to this id simulates a
         SIGKILL after that many claims (exit 10, lease left unserved). *)
      let faults =
        match parse_kill_worker kill_worker with
        | Some (i, n) when i = worker_id ->
            Some
              (Resilience.Faultplan.create
                 [ Resilience.Faultplan.Kill_after { records = n } ])
        | Some _ | None -> None
      in
      match
        Dist.Worker.run ~dir ~id:worker_id ~eval:lease_eval ?fsync_every
          ?faults ()
      with
      | stats ->
          Printf.eprintf "worker %d: %d leases claimed, %d evaluated\n%!"
            worker_id stats.Dist.Worker.claims stats.Dist.Worker.evaluated;
          0
      | exception Resilience.Faultplan.Killed n ->
          Printf.eprintf "worker %d: killed after %d claims (simulated)\n%!"
            worker_id n;
          10)
  | false, Some dir ->
      (* Coordinator mode: lease batches to the fleet through the optimizer's
         dispatch hook. [local_eval] is the all-workers-dead fallback. *)
      let coord =
        Dist.Coordinator.create ~dir ~ttl_s:lease_ttl ~local_eval:lease_eval ()
      in
      let options =
        {
          (options_of ~seed ~budget ~jobs ~prune:false) with
          Compiler.dispatch =
            Some (fun ~scope batch -> Dist.Coordinator.dispatch coord ~scope batch);
        }
      in
      (* Each worker is this binary re-invoked in --worker mode, stdout
         redirected onto our stderr so the coordinator's stdout stays
         byte-identical to a single-process run. *)
      let spawn i =
        let args =
          [
            Sys.executable_name; "search"; app; "-t"; target;
            "--seed"; string_of_int seed; "-j"; "1";
            "--coordinator"; dir; "--worker"; "--worker-id"; string_of_int i;
            "--retries"; string_of_int retries;
          ]
          @ (match eval_budget with
            | Some b -> [ "--eval-budget"; string_of_float b ]
            | None -> [])
          @ (match fsync_every with
            | Some k -> [ "--fsync-every"; string_of_int k ]
            | None -> [])
          @
          match kill_worker with
          | Some s -> [ "--kill-worker"; s ]
          | None -> []
        in
        Unix.create_process Sys.executable_name (Array.of_list args)
          Unix.stdin Unix.stderr Unix.stderr
      in
      let pids = List.init workers spawn in
      let result = Compiler.generate ~options platform (Schedule.model spec) in
      Dist.Coordinator.finish coord;
      print_search_result ~target ~output result;
      let s = Dist.Coordinator.stats coord in
      Printf.eprintf
        "coordinator: %d leases issued (%d reissued), %d records merged, %d \
         replayed, %d evaluated inline\n%!"
        s.Dist.Coordinator.leases_issued s.Dist.Coordinator.leases_reissued
        s.Dist.Coordinator.merged s.Dist.Coordinator.replay_hits
        s.Dist.Coordinator.inline_evaluated;
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, Unix.WEXITED code ->
              Printf.eprintf "worker pid %d exited %d\n%!" pid code
          | _, (Unix.WSIGNALED sg | Unix.WSTOPPED sg) ->
              Printf.eprintf "worker pid %d signaled %d\n%!" pid sg)
        pids;
      0
  | false, None ->
      (* Inline: the single-process reference the distributed modes must
         match byte-for-byte on stdout. *)
      let options =
        { (options_of ~seed ~budget ~jobs ~prune:false) with Compiler.supervisor }
      in
      let result = Compiler.generate ~options platform (Schedule.model spec) in
      print_search_result ~target ~output result;
      0

(* compose: many guarded models, one shared data plane *)

module Policy = Homunculus_policy.Policy
module Pred = Homunculus_policy.Pred
module Lower = Homunculus_policy.Lower

(* Compose members search with MAT-mappable shortlists: the point of the
   subcommand is multi-tenant table/stage sharing, and a binarized DNN
   would eat the whole budget slice on its own. *)
let compose_spec_of_app app seed =
  match app with
  | "ad" ->
      Model_spec.make ~name:"anomaly_detection" ~metric:Model_spec.F1
        ~algorithms:[ Model_spec.Svm; Model_spec.Tree ]
        ~loader:(fun () ->
          let rng = Rng.create seed in
          let train, test = Nslkdd.generate_split rng () in
          Model_spec.data ~train ~test)
        ()
  | "tc" ->
      Model_spec.make ~name:"traffic_classification" ~metric:Model_spec.F1
        ~algorithms:[ Model_spec.Svm; Model_spec.Tree ]
        ~loader:(fun () ->
          let rng = Rng.create seed in
          let train, test = Iot.generate_split rng () in
          Model_spec.data ~train ~test)
        ()
  | "tc-kmeans" -> spec_of_app "tc-kmeans" seed
  | other ->
      failwith
        (Printf.sprintf "unknown compose app %s (use ad|tc|tc-kmeans)" other)

(* Default per-tenant steering guards, tuned to the synthetic generators so
   each matches a meaningful slice of traffic: the AD tenant sees
   high-fanout / SYN-error flows, the TC tenants see sub-MTU IoT frames. *)
let compose_guard_of_app = function
  | "ad" ->
      Pred.disj
        [ Pred.field_ge "host_count" 20.; Pred.field_ge "serror_rate" 0.1 ]
  | "tc" -> Pred.field_lt "frame_size" 1200.
  | "tc-kmeans" -> Pred.field_ge "payload_entropy" 5.
  | _ -> Pred.True

let compose apps target seed budget jobs prune samples output =
  let apps = if apps = [] then [ "ad"; "tc" ] else apps in
  let platform = platform_of_name target in
  let specs = List.map (fun app -> (app, compose_spec_of_app app seed)) apps in
  let policy =
    Policy.par
      (List.map
         (fun (app, spec) ->
           Policy.guard (compose_guard_of_app app) (Policy.model spec))
         specs)
  in
  let options = options_of ~seed ~budget ~jobs ~prune in
  Printf.printf "policy: %s\n" (Policy.to_string (Policy.normalize policy));
  match Compiler.compile_policy ~options platform policy with
  | Error e ->
      Printf.printf "composition rejected: %s\n" (Lower.error_to_string e);
      2
  | Ok pr ->
      let composed = pr.Compiler.composed in
      List.iter
        (fun ((t : Policy.tenant), (m : Compiler.model_result)) ->
          Printf.printf "tenant %-28s %-6s objective %.4f\n" t.Policy.id
            (Model_spec.algorithm_to_string m.Compiler.artifact.Evaluator.algorithm)
            m.Compiler.artifact.Evaluator.objective)
        pr.Compiler.tenant_models;
      (match composed.Lower.pipeline with
      | Lower.Mat { device; _ } ->
          let standalone =
            List.fold_left
              (fun acc tn -> acc + Lower.standalone_stages device tn)
              0 composed.Lower.tenants
          in
          Printf.printf "shared pipeline: %d stages (standalone sum %d)\n"
            (Lower.stages_used composed) standalone
      | Lower.Grid { cus; mus; pipeline_cycles; _ } ->
          Printf.printf "shared grid: %d CUs, %d MUs, %d cycles\n" cus mus
            pipeline_cycles);
      let summary = Lower.summary composed in
      (match output with
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc summary);
          Printf.printf "wrote composition summary to %s\n" path
      | None -> print_string summary);
      (* Differential oracle: the data-plane semantics (guard tables +
         shared projections) must bit-match the per-tenant reference on a
         corpus mixing every tenant's test marginals. *)
      let module Compose_eval = Homunculus_check.Compose_eval in
      let sources =
        List.map
          (fun (_, spec) ->
            let data = Model_spec.load spec in
            ( data.Model_spec.test.Dataset.feature_names,
              data.Model_spec.test.Dataset.x ))
          specs
      in
      let vecs =
        Compose_eval.corpus (Rng.create (seed + 1))
          ~features:composed.Lower.features ~n:samples sources
      in
      let violations = Compose_eval.check composed vecs in
      List.iter
        (fun v ->
          Printf.printf "VIOLATION %s\n" (Compose_eval.violation_to_string v))
        violations;
      if violations <> [] then begin
        Printf.printf "differential oracle: %d violations on %d samples\n"
          (List.length violations) samples;
        1
      end
      else if not composed.Lower.verdict.Homunculus_backends.Resource.feasible
      then begin
        Printf.printf "composed pipeline INFEASIBLE: %s\n"
          (Option.value ~default:"unknown"
             composed.Lower.verdict.Homunculus_backends.Resource.rejection);
        3
      end
      else begin
        Printf.printf
          "differential oracle: %d samples bit-identical; composition \
           feasible at line rate\n"
          samples;
        0
      end

(* inspect *)

let inspect target =
  let platform = platform_of_name target in
  Printf.printf "platform: %s\n" (Platform.name platform);
  let perf = Platform.perf platform in
  Printf.printf "constraints: %.3f Gpkt/s minimum, %.0f ns latency budget\n"
    perf.Homunculus_backends.Resource.min_throughput_gpps
    perf.Homunculus_backends.Resource.max_latency_ns;
  (match platform.Platform.target with
  | Platform.Taurus g ->
      Printf.printf
        "grid: %dx%d (%d CUs + %d MUs), %d-wide SIMD, %d params/MU, %.1f GHz\n"
        g.Homunculus_backends.Taurus.rows g.Homunculus_backends.Taurus.cols
        (Homunculus_backends.Taurus.available_cus g)
        (Homunculus_backends.Taurus.available_mus g)
        g.Homunculus_backends.Taurus.vec_width
        g.Homunculus_backends.Taurus.mu_words
        g.Homunculus_backends.Taurus.clock_ghz
  | Platform.Tofino d ->
      Printf.printf "pipeline: %d MATs, %d entries/table, %d stages\n"
        d.Homunculus_backends.Tofino.n_tables
        d.Homunculus_backends.Tofino.entries_per_table
        d.Homunculus_backends.Tofino.n_stages
  | Platform.Fpga d ->
      let r = Homunculus_backends.Fpga.loopback_report d in
      Printf.printf "shell (loopback): %.2f%% LUT, %.2f%% FF, %.2f%% BRAM, %.3f W\n"
        r.Homunculus_backends.Fpga.lut_pct r.Homunculus_backends.Fpga.ff_pct
        r.Homunculus_backends.Fpga.bram_pct r.Homunculus_backends.Fpga.power_w);
  List.iter
    (fun algo ->
      Printf.printf "  %-8s %s\n"
        (Model_spec.algorithm_to_string algo)
        (if Platform.supports platform algo then "supported" else "unsupported"))
    Model_spec.all_algorithms;
  0

(* datasets *)

let datasets seed =
  let rng = Rng.create seed in
  let show name (d : Dataset.t) =
    Printf.printf "%-22s %6d samples, %3d features, %d classes, counts [%s]\n"
      name (Dataset.n_samples d) (Dataset.n_features d) d.Dataset.n_classes
      (String.concat "; "
         (Array.to_list (Array.map string_of_int (Dataset.class_counts d))))
  in
  show "nslkdd (AD)" (Nslkdd.generate rng ());
  show "iot (TC)" (Iot.generate rng ());
  let train, test = Botnet.generate rng () in
  show "botnet train (flows)" train;
  show "botnet test (packets)" test;
  0

(* sweep *)

let sweep seed budget jobs prune =
  let spec = spec_of_app "tc-kmeans" seed in
  let options = options_of ~seed ~budget ~jobs ~prune in
  Printf.printf "%-4s %10s %6s\n" "K" "V-measure" "MATs";
  List.iter
    (fun tables ->
      let platform = Platform.with_tables (Platform.tofino ()) tables in
      let r = Compiler.search_model ~options platform spec in
      let a = r.Compiler.artifact in
      Printf.printf "K%-3d %10.2f %6d\n" tables
        (100. *. a.Evaluator.objective)
        (Homunculus_backends.Tofino.mats_used a.Evaluator.verdict))
    [ 5; 4; 3; 2; 1 ];
  0

(* place: search a model and show its grid floor plan *)

let place app seed budget jobs prune =
  let spec = spec_of_app app seed in
  let options = options_of ~seed ~budget ~jobs ~prune in
  let result = Compiler.search_model ~options (Platform.taurus ()) spec in
  let model = result.Compiler.artifact.Evaluator.model_ir in
  let grid = Homunculus_backends.Taurus.default_grid in
  Printf.printf "model: %s (%d params)\n"
    (Homunculus_backends.Model_ir.algorithm model)
    (Homunculus_backends.Model_ir.param_count model);
  (match Homunculus_backends.Placement.place_model grid model with
  | Ok p ->
      Printf.printf "utilization %.0f%%, wirelength %.1f\n\n%s"
        (100. *. Homunculus_backends.Placement.utilization p)
        (Homunculus_backends.Placement.wirelength p)
        (Homunculus_backends.Placement.render p)
  | Error e -> Printf.printf "placement failed: %s\n" e);
  0

(* simulate: drive the mapped model with packet load *)

let simulate app seed budget jobs prune rate packets =
  let spec = spec_of_app app seed in
  let options = options_of ~seed ~budget ~jobs ~prune in
  let result = Compiler.search_model ~options (Platform.taurus ()) spec in
  let model = result.Compiler.artifact.Evaluator.model_ir in
  let grid = Homunculus_backends.Taurus.default_grid in
  let mapping = Homunculus_backends.Taurus.map_model grid model in
  let config = Homunculus_backends.Pipeline_sim.config_of_mapping grid mapping in
  let arrivals =
    Homunculus_backends.Pipeline_sim.poisson_arrivals (Rng.create seed)
      ~rate_gpps:rate ~n:packets
  in
  let s = Homunculus_backends.Pipeline_sim.simulate config ~arrivals_ns:arrivals in
  Printf.printf
    "II=%d, depth %d cycles; %d packets at %.2f Gpkt/s Poisson:\n\
     delivered %.3f Gpkt/s, mean %.1f ns, p99 %.1f ns, %d drops, max queue %d\n"
    mapping.Homunculus_backends.Taurus.ii
    config.Homunculus_backends.Pipeline_sim.pipeline_cycles packets rate
    s.Homunculus_backends.Pipeline_sim.achieved_gpps
    s.Homunculus_backends.Pipeline_sim.mean_latency_ns
    s.Homunculus_backends.Pipeline_sim.p99_latency_ns
    s.Homunculus_backends.Pipeline_sim.packets_dropped
    s.Homunculus_backends.Pipeline_sim.max_queue_depth;
  0

(* export-trace: freeze a synthetic flow population to disk *)

let export_trace seed flows output =
  let rng = Rng.create seed in
  let population =
    Homunculus_netdata.Flowsim.generate rng
      ~mix:{ Homunculus_netdata.Flowsim.n_flows = flows; botnet_frac = 0.5; max_packets = 400 }
      ()
  in
  (match output with
  | Some path ->
      Homunculus_netdata.Trace.save ~path population;
      Printf.printf "wrote %d flows to %s\n" flows path
  | None -> print_string (Homunculus_netdata.Trace.to_string population));
  0

(* serve: replay a frozen trace through the online serving runtime *)

let serve trace_path seed rate window_events label_delay algorithm train_frac
    no_update quantized inject_drift jsonl_out autopilot research_budget
    research_evals cooldown research_journal faults target =
  let module Serve = Homunculus_serve in
  let module Trace = Homunculus_netdata.Trace in
  let module Botnet = Homunculus_netdata.Botnet in
  let module Autopilot = Homunculus_autopilot.Autopilot in
  let faults = Resilience.Faultplan.of_string faults in
  if autopilot && no_update then
    failwith "--autopilot needs the updater's labeled buffer: drop --no-update";
  let flows = Trace.load ~path:trace_path in
  let n = Array.length flows in
  if n < 10 then failwith "trace too small: need at least 10 flows";
  let rng = Rng.create seed in
  let n_train =
    Stdlib.max 1 (Stdlib.min (n - 1) (int_of_float (train_frac *. float_of_int n)))
  in
  let train_flows = Array.sub flows 0 n_train in
  let serve_flows = Array.sub flows n_train (n - n_train) in
  let algorithm =
    match algorithm with
    | "dnn" -> `Dnn
    | "svm" -> `Svm
    | "tree" -> `Tree
    | other -> failwith (Printf.sprintf "unknown algorithm %s (use dnn|svm|tree)" other)
  in
  if quantized && algorithm = `Dnn then
    failwith "quantized mode needs a MAT-mappable model: use --algorithm svm or tree";
  let model =
    Serve.Updater.bootstrap (Rng.split rng) ~algorithm ~bins:Botnet.Fused
      ~name:"serve" train_flows
  in
  let window_s = 600. in
  let events =
    if inject_drift then begin
      let half = Array.length serve_flows / 2 in
      let phase_a = Array.sub serve_flows 0 half in
      let phase_b =
        Serve.Stream.renumber ~from:(n + Array.length serve_flows)
          (Serve.Stream.shift_botnet
             (Array.sub serve_flows half (Array.length serve_flows - half)))
      in
      let sched_a = Array.map (fun f -> (Rng.float rng window_s, f)) phase_a in
      let sched_b =
        Array.map (fun f -> (window_s +. Rng.float rng window_s, f)) phase_b
      in
      Serve.Stream.events_scheduled (Array.append sched_a sched_b)
    end
    else Serve.Stream.events rng ~start_window_s:window_s serve_flows
  in
  Printf.printf "%d flows -> %d per-packet events (%d bootstrap flows)%s\n"
    (Array.length serve_flows) (Array.length events) n_train
    (if inject_drift then
       Printf.sprintf "; botnet profile shifts at t = %.0f s" window_s
     else "");
  let monitor =
    Serve.Monitor.create
      ~config:
        {
          Serve.Monitor.default_config with
          Serve.Monitor.window_events;
          label_delay_s = label_delay;
          cooldown_windows = cooldown;
        }
      ~n_classes:2 ()
  in
  (* The serving layer knows nothing of fault plans: drift@W faults are
     realized here by registering forced alarms on the monitor. *)
  List.iter
    (fun window -> Serve.Monitor.force_drift_at monitor ~window)
    (Resilience.Faultplan.drift_windows faults);
  let updater =
    if no_update then None
    else
      Some
        (Serve.Updater.create (Rng.split rng)
           ~n_features:(Botnet.n_features Botnet.Fused) ~n_classes:2 ())
  in
  let pilot =
    if not autopilot then None
    else
      let updater = Option.get updater in
      let journal_dir =
        match research_journal with
        | Some dir -> dir
        | None -> trace_path ^ ".research"
      in
      let cfg =
        {
          (Autopilot.default_config ~platform:(platform_of_name target)
             ~journal_dir)
          with
          Autopilot.seed;
          budget_s = research_budget;
          fresh_evals = research_evals;
          faults;
        }
      in
      Some (Autopilot.create cfg ~updater)
  in
  let config =
    {
      Serve.Engine.default_config with
      Serve.Engine.service_rate_pps = rate;
      mode = (if quantized then Serve.Engine.Quantized else Serve.Engine.Reference);
    }
  in
  let engine =
    Serve.Engine.create ~config ~model ~monitor ?updater
      ?research:(Option.map Autopilot.hook pilot)
      ()
  in
  match Serve.Engine.run engine events with
  | exception Resilience.Faultplan.Killed n ->
      (* A simulated crash mid-re-search: the generation journal is already
         flushed, so the next invocation resumes it bit-for-bit. *)
      Printf.eprintf "re-search killed after %d fresh journal records (simulated)\n" n;
      10
  | summary ->
  Printf.printf "served %d, dropped %d of %d offered\n" summary.Serve.Engine.served
    summary.Serve.Engine.dropped summary.Serve.Engine.offered;
  let windows = summary.Serve.Engine.windows in
  let n_windows = List.length windows in
  let stride = Stdlib.max 1 (n_windows / 24) in
  Printf.printf "%-8s %10s %8s %8s %8s %10s\n" "window" "t_end" "events" "acc"
    "F1" "max queue";
  List.iter
    (fun (w : Serve.Monitor.window) ->
      if w.Serve.Monitor.index mod stride = 0 then
        Printf.printf "%-8d %10.1f %8d %8.3f %8.3f %10d\n" w.Serve.Monitor.index
          w.Serve.Monitor.t_end w.Serve.Monitor.events w.Serve.Monitor.accuracy
          w.Serve.Monitor.f1 w.Serve.Monitor.max_queue_depth)
    windows;
  List.iter
    (fun (d : Serve.Monitor.drift) ->
      Printf.printf "drift @ %.1f s: %s (%.3f), window %d\n" d.Serve.Monitor.ts
        d.Serve.Monitor.reason d.Serve.Monitor.value d.Serve.Monitor.window)
    summary.Serve.Engine.drift_events;
  List.iter
    (fun (s : Serve.Engine.swap) ->
      Printf.printf
        "swap  @ %.1f s: holdout F1 %.3f -> %.3f, %d queued packets preserved, \
         %d dropped during swap\n"
        s.Serve.Engine.swap_ts s.Serve.Engine.incumbent_f1
        s.Serve.Engine.challenger_f1 s.Serve.Engine.queue_preserved
        s.Serve.Engine.dropped_during_swap)
    summary.Serve.Engine.swaps;
  (match pilot with
  | None -> ()
  | Some p ->
      List.iter
        (fun (e : Autopilot.event) ->
          (* deterministic fields to stdout, accounting to stderr: a
             resumed run stays diff-clean against an uninterrupted one *)
          print_endline (Autopilot.event_to_string e);
          Printf.eprintf
            "autopilot accounting: window=%d replayed=%d fresh=%d wall=%.3fs\n"
            e.Autopilot.window e.Autopilot.replayed e.Autopilot.fresh
            e.Autopilot.wall_s)
        (Autopilot.events p));
  (match jsonl_out with
  | Some path ->
      Serve.Report.write_jsonl ~path summary;
      Printf.printf "wrote timeline to %s\n" path
  | None -> ());
  0

(* loadgen: open-loop serving throughput / latency measurement *)

let loadgen seed payload rates process_name burst peak service_rate quantized
    slo_p99 json_out =
  let module Serve = Homunculus_serve in
  let module Model_ir = Homunculus_backends.Model_ir in
  let module Svm = Homunculus_ml.Svm in
  let module Serve_eval = Homunculus_check.Serve_eval in
  let module Json = Homunculus_util.Json in
  let rng = Rng.create seed in
  let process =
    match process_name with
    | "poisson" -> Serve.Loadgen.Poisson
    | "bursty" ->
        Serve.Loadgen.Bursty { mean_burst = burst; peak_factor = peak }
    | other ->
        failwith (Printf.sprintf "unknown process %s (use poisson|bursty)" other)
  in
  (* Payload: a MAT-mappable model plus a feature-carrying event trace whose
     timestamps the generator will overwrite. *)
  let model, base, n_classes =
    match payload with
    | "botnet" ->
        let mix =
          { Homunculus_netdata.Flowsim.n_flows = 100;
            botnet_frac = 0.5; max_packets = 160 }
        in
        let train = Homunculus_netdata.Flowsim.generate rng ~mix () in
        let model =
          Serve.Updater.bootstrap (Rng.split rng) ~algorithm:`Svm
            ~bins:Botnet.Fused ~name:"botnet_detection" train
        in
        let flows = Homunculus_netdata.Flowsim.generate rng ~mix () in
        (model, Serve.Stream.events (Rng.split rng) flows, 2)
    | "nslkdd" | "iot" ->
        let train, test =
          if payload = "nslkdd" then Nslkdd.generate_split (Rng.split rng) ()
          else Iot.generate_split (Rng.split rng) ()
        in
        let svm = Svm.fit (Rng.split rng) train in
        let model = Model_ir.of_svm ~name:payload svm in
        let n = Array.length test.Dataset.x in
        let base =
          Serve.Stream.of_samples ~app:payload ~labels:test.Dataset.y
            ~ts:(Array.init n float_of_int) test.Dataset.x
        in
        (model, base, train.Dataset.n_classes)
    | other ->
        failwith
          (Printf.sprintf "unknown payload %s (use botnet|nslkdd|iot)" other)
  in
  let mode = if quantized then Serve.Engine.Quantized else Serve.Engine.Reference in
  Printf.printf
    "payload %s: %d events, %d classes; %s drain, service rate %.0f pps\n\n"
    payload (Array.length base) n_classes
    (if quantized then "quantized" else "reference")
    service_rate;
  let run_rate rate =
    let g =
      Serve.Loadgen.generator (Rng.create (seed + 1)) ~rate ~process
    in
    let events = Serve.Loadgen.retime g base in
    let config =
      {
        Serve.Engine.default_config with
        Serve.Engine.mode;
        service_rate_pps = service_rate;
        trace_capacity = Array.length events;
      }
    in
    let monitor = Serve.Monitor.create ~n_classes () in
    let engine = Serve.Engine.create ~config ~model ~monitor () in
    let label =
      Printf.sprintf "%s_%s_%gpps" payload
        (Serve.Loadgen.process_name process) rate
    in
    (engine, Serve.Loadgen.drive ~label engine ~rate ~process events)
  in
  let runs = List.map run_rate rates in
  List.iter
    (fun (_, (r : Serve.Loadgen.result)) ->
      let lat p =
        if Array.length r.Serve.Loadgen.latencies = 0 then Float.nan
        else Serve.Report.percentile p r.Serve.Loadgen.latencies
      in
      Printf.printf
        "%-28s offered %6d served %6d dropped %5d | %9.0f inf/s | p50 %6.1f \
         ms  p99 %6.1f ms  p999 %6.1f ms\n"
        r.Serve.Loadgen.label r.Serve.Loadgen.offered r.Serve.Loadgen.served
        r.Serve.Loadgen.dropped r.Serve.Loadgen.sustained_ips
        (1e3 *. lat 50.) (1e3 *. lat 99.) (1e3 *. lat 99.9))
    runs;
  (* Quantized runs must replay bit-identically through the pure oracle. *)
  let mismatches =
    if not quantized then 0
    else
      List.fold_left
        (fun acc (engine, _) ->
          let rp = Serve_eval.replay_quantized engine in
          acc + List.length rp.Serve_eval.mismatches)
        0 runs
  in
  if quantized then
    Printf.printf "\nquantized replay oracle: %d mismatches\n" mismatches;
  (match json_out with
  | Some path ->
      let json =
        Json.Object
          [
            ("seed", Json.Number (float_of_int seed));
            ("payload", Json.String payload);
            ("service_rate_pps", Json.Number service_rate);
            ( "runs",
              Json.List
                (List.map
                   (fun (_, r) -> Serve.Loadgen.result_to_json r)
                   runs) );
          ]
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Json.to_string ~pretty:true json);
          Out_channel.output_char oc '\n');
      Printf.printf "wrote %s\n" path
  | None -> ());
  if mismatches > 0 then begin
    Printf.eprintf "FAIL: quantized drain diverged from the replay oracle\n";
    1
  end
  else
    match slo_p99 with
    | None -> 0
    | Some budget ->
        let worst =
          List.fold_left
            (fun acc (_, r) ->
              (* The SLO applies to rates the engine can sustain — an
                 over-subscribed run's latency rides the queue capacity by
                 design, so gate only runs that dropped nothing. *)
              if r.Serve.Loadgen.dropped = 0 then
                Stdlib.max acc (Serve.Loadgen.p99 r)
              else acc)
            neg_infinity runs
        in
        if worst = neg_infinity then begin
          Printf.printf "SLO gate: no drop-free run to gate\n";
          0
        end
        else if worst <= budget then begin
          Printf.printf "SLO gate: worst drop-free p99 %.1f ms <= budget %.1f ms\n"
            (1e3 *. worst) (1e3 *. budget);
          0
        end
        else begin
          Printf.eprintf "FAIL: p99 %.4f s exceeds the %.4f s SLO budget\n"
            worst budget;
          4
        end

(* check: differential conformance harness *)

let check seed trials backends families artifact_dir max_shrink replay =
  let module Check = Homunculus_check in
  match replay with
  | Some path ->
      let outcome = Check.Harness.replay ~path in
      print_string (Check.Harness.render_replay outcome);
      if Check.Harness.replay_ok outcome then 0 else 1
  | None ->
      let backends =
        match backends with
        | [] -> Check.Oracle.all_backends
        | names ->
            List.map
              (fun name ->
                match Check.Oracle.backend_of_string name with
                | Some b -> b
                | None ->
                    failwith
                      (Printf.sprintf
                         "unknown backend %s (use spatial|mat-runtime|p4)" name))
              names
      in
      let families =
        match families with
        | [] -> Check.Gen.all_families
        | names ->
            List.map
              (fun name ->
                match Check.Gen.family_of_string name with
                | Some f -> f
                | None ->
                    failwith
                      (Printf.sprintf
                         "unknown family %s (use mlp|tree|forest|svm|kmeans)" name))
              names
      in
      let options =
        {
          Check.Harness.seed;
          trials;
          backends;
          families;
          artifact_dir;
          max_shrink;
        }
      in
      let report = Check.Harness.run options in
      print_string (Check.Harness.render report);
      if Check.Harness.ok report then 0 else 1

let flows_arg =
  let doc = "Number of flows to synthesize." in
  Arg.(value & opt int 200 & info [ "flows" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Offered load in Gpkt/s for the pipeline simulation." in
  Arg.(value & opt float 0.9 & info [ "rate" ] ~docv:"GPPS" ~doc)

let packets_arg =
  let doc = "Number of packets to simulate." in
  Arg.(value & opt int 20000 & info [ "packets" ] ~docv:"N" ~doc)

(* Command wiring *)

let compile_cmd =
  let doc = "Search, train, and compile an application for a data-plane target." in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const compile $ app_arg $ target_arg $ seed_arg $ budget_arg $ jobs_arg
      $ prune_arg $ cost_model_arg $ cm_margin_arg $ cm_min_obs_arg
      $ cm_conviction_arg
      $ journal_arg $ resume_arg $ faults_arg $ retries_arg
      $ eval_budget_arg $ output_arg)

let search_cmd =
  let coordinator_arg =
    let doc =
      "Run the search distributed: lease candidates out of this coordination \
       directory to worker processes and merge their journaled evaluations. \
       For a fixed --seed and -j, stdout is byte-identical to the inline run \
       at any fleet size. Reusing a directory resumes: already-journaled \
       evaluations are merged instead of re-leased."
    in
    Arg.(value & opt (some string) None & info [ "coordinator" ] ~docv:"DIR" ~doc)
  in
  let workers_arg =
    let doc = "Local worker processes to spawn (coordinator mode)." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let lease_ttl_arg =
    let doc =
      "Reissue a lease not answered within this many seconds — a killed \
       worker costs only its in-flight leases. Duplicated evaluations are \
       harmless (config-derived seeds make them bit-identical)."
    in
    Arg.(value & opt float 5. & info [ "lease-ttl" ] ~docv:"SECONDS" ~doc)
  in
  let fsync_every_arg =
    let doc =
      "Group-commit the worker journals: fsync once per this many appended \
       records instead of every record. A crash loses at most the unsynced \
       tail, which the lease TTL re-evaluates."
    in
    Arg.(value & opt (some int) None & info [ "fsync-every" ] ~docv:"K" ~doc)
  in
  let worker_arg =
    let doc =
      "Internal: run as a lease-claiming worker for --coordinator DIR \
       (spawned automatically in coordinator mode; invoke manually to \
       attach an extra worker to a live search)."
    in
    Arg.(value & flag & info [ "worker" ] ~doc)
  in
  let worker_id_arg =
    let doc = "Internal: this worker's id (names its journal)." in
    Arg.(value & opt int 0 & info [ "worker-id" ] ~docv:"I" ~doc)
  in
  let kill_worker_arg =
    let doc =
      "Fault injection: simulate a SIGKILL of worker $(i,WORKER) after its \
       $(i,CLAIMS)th lease claim (before the evaluation runs), e.g. 1:3. \
       The search must still finish with identical stdout."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "kill-worker" ] ~docv:"WORKER:CLAIMS" ~doc)
  in
  let doc =
    "Run the design-space search inline or distributed across processes. \
     Same search as $(b,compile); adds --coordinator/--workers to fan \
     candidate evaluations out to an elastic, crash-tolerant worker fleet \
     with deterministic (bit-identical) results."
  in
  Cmd.v (Cmd.info "search" ~doc)
    Term.(
      const search $ app_arg $ target_arg $ seed_arg $ budget_arg $ jobs_arg
      $ coordinator_arg $ workers_arg $ lease_ttl_arg $ fsync_every_arg
      $ worker_arg $ worker_id_arg $ kill_worker_arg $ retries_arg
      $ eval_budget_arg $ output_arg)

let compose_cmd =
  let apps_arg =
    let doc =
      "Tenant applications to co-host (repeat positionally): ad, tc, \
       tc-kmeans. Default: ad tc."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"APPS" ~doc)
  in
  let samples_arg =
    let doc = "Samples for the composed-pipeline differential oracle." in
    Arg.(value & opt int 256 & info [ "samples" ] ~docv:"N" ~doc)
  in
  let doc =
    "Compose guarded tenant models into one shared data-plane pipeline. \
     Exits 1 on a differential-oracle violation, 2 when the lowering \
     rejects the composition, 3 when the composed pipeline is infeasible \
     at the platform's performance target."
  in
  Cmd.v (Cmd.info "compose" ~doc)
    Term.(
      const compose $ apps_arg $ target_arg $ seed_arg $ budget_arg $ jobs_arg
      $ prune_arg $ samples_arg $ output_arg)

let inspect_cmd =
  let doc = "Print a target platform's resource model and capabilities." in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const inspect $ target_arg)

let datasets_cmd =
  let doc = "Summarize the synthetic dataset generators." in
  Cmd.v (Cmd.info "datasets" ~doc) Term.(const datasets $ seed_arg)

let sweep_cmd =
  let doc = "Sweep the KMeans classifier across MAT budgets (Fig. 7)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const sweep $ seed_arg $ budget_arg $ jobs_arg $ prune_arg)

let place_cmd =
  let doc = "Show a searched model's floor plan on the Taurus grid." in
  Cmd.v (Cmd.info "place" ~doc)
    Term.(const place $ app_arg $ seed_arg $ budget_arg $ jobs_arg $ prune_arg)

let simulate_cmd =
  let doc = "Drive a searched model's pipeline with packet load." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ app_arg $ seed_arg $ budget_arg $ jobs_arg $ prune_arg
      $ rate_arg $ packets_arg)

let export_trace_cmd =
  let doc = "Synthesize a P2P flow population and write it as a trace file." in
  Cmd.v (Cmd.info "export-trace" ~doc)
    Term.(const export_trace $ seed_arg $ flows_arg $ output_arg)

let serve_cmd =
  let trace_arg =
    let doc = "Trace file to replay (see export-trace)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let rate_arg =
    let doc = "Service rate in packets per virtual second." in
    Arg.(value & opt float 200. & info [ "rate" ] ~docv:"PPS" ~doc)
  in
  let window_arg =
    let doc = "Labeled events per evaluation window." in
    Arg.(value & opt int 250 & info [ "window" ] ~docv:"N" ~doc)
  in
  let label_delay_arg =
    let doc = "Virtual-time lag before ground-truth labels arrive, seconds." in
    Arg.(value & opt float 5. & info [ "label-delay" ] ~docv:"S" ~doc)
  in
  let algorithm_arg =
    let doc = "Model family to bootstrap: dnn, svm, or tree." in
    Arg.(value & opt string "dnn" & info [ "algorithm" ] ~docv:"ALGO" ~doc)
  in
  let train_frac_arg =
    let doc = "Fraction of the trace's flows used to train the initial model." in
    Arg.(value & opt float 0.4 & info [ "train-frac" ] ~docv:"F" ~doc)
  in
  let no_update_arg =
    let doc = "Monitor only: never retrain or hot-swap." in
    Arg.(value & flag & info [ "no-update" ] ~doc)
  in
  let quantized_arg =
    let doc = "Execute through the quantized MAT runtime instead of the \
               floating-point reference (svm/tree models only)." in
    Arg.(value & flag & info [ "quantized" ] ~doc)
  in
  let inject_drift_arg =
    let doc = "Shift the botnet traffic profile for the second half of the \
               replay (concept-drift demo)." in
    Arg.(value & flag & info [ "inject-drift" ] ~doc)
  in
  let jsonl_arg =
    let doc = "Write the window/drift/swap timeline as JSONL to this file." in
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)
  in
  let autopilot_arg =
    let doc = "React to drift with a budgeted, journal-warm-started \
               incremental re-search over the updater's labeled buffer \
               instead of the updater's single retrain; the winner installs \
               through the same validation margin." in
    Arg.(value & flag & info [ "autopilot" ] ~doc)
  in
  let research_budget_arg =
    let doc = "Wall-clock budget per autopilot re-search, in seconds; a \
               budget-killed search resumes on the next drift alarm." in
    Arg.(value & opt (some float) None & info [ "research-budget" ] ~docv:"S" ~doc)
  in
  let research_evals_arg =
    let doc = "Strictly-new guided evaluations per autopilot re-search." in
    Arg.(value & opt int 4 & info [ "research-evals" ] ~docv:"N" ~doc)
  in
  let cooldown_arg =
    let doc = "Monitor hysteresis: swallow further drift alarms for this \
               many evaluation windows after one is consumed." in
    Arg.(value & opt int 0 & info [ "cooldown" ] ~docv:"W" ~doc)
  in
  let research_journal_arg =
    let doc = "Directory for the autopilot's generation journals \
               (research-NNN.jsonl + .done markers); defaults to \
               TRACE.research." in
    Arg.(
      value
      & opt (some string) None
      & info [ "research-journal" ] ~docv:"DIR" ~doc)
  in
  let faults_arg =
    let doc = "Fault plan, e.g. drift@3,research-timeout@0,kill@5 \
               (see compile --faults)." in
    Arg.(value & opt string "" & info [ "faults" ] ~docv:"PLAN" ~doc)
  in
  let doc = "Replay a trace through the online serving runtime." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ trace_arg $ seed_arg $ rate_arg $ window_arg
      $ label_delay_arg $ algorithm_arg $ train_frac_arg $ no_update_arg
      $ quantized_arg $ inject_drift_arg $ jsonl_arg $ autopilot_arg
      $ research_budget_arg $ research_evals_arg $ cooldown_arg
      $ research_journal_arg $ faults_arg $ target_arg)

let loadgen_cmd =
  let payload_arg =
    let doc = "Workload to serve: botnet, nslkdd, or iot." in
    Arg.(value & opt string "botnet" & info [ "payload" ] ~docv:"NAME" ~doc)
  in
  let rates_arg =
    let doc = "Offered arrival rate in packets per second. Repeatable." in
    Arg.(value & opt_all float [ 100.; 240. ] & info [ "rate" ] ~docv:"PPS" ~doc)
  in
  let process_arg =
    let doc = "Arrival process: poisson or bursty." in
    Arg.(value & opt string "poisson" & info [ "process" ] ~docv:"PROC" ~doc)
  in
  let burst_arg =
    let doc = "Mean burst length for the bursty process." in
    Arg.(value & opt int 8 & info [ "burst" ] ~docv:"N" ~doc)
  in
  let peak_arg =
    let doc = "In-burst rate multiplier for the bursty process." in
    Arg.(value & opt float 4. & info [ "peak" ] ~docv:"F" ~doc)
  in
  let service_rate_arg =
    let doc = "Engine service rate in packets per virtual second." in
    Arg.(value & opt float 200. & info [ "service-rate" ] ~docv:"PPS" ~doc)
  in
  let quantized_arg =
    let doc = "Drain through the fixed-point MAT runtime and replay every \
               verdict through the pure oracle (exit 1 on any mismatch)." in
    Arg.(value & flag & info [ "quantized" ] ~doc)
  in
  let slo_arg =
    let doc = "Fail (exit 4) when the worst drop-free p99 service latency \
               exceeds this budget in seconds." in
    Arg.(value & opt (some float) None & info [ "slo-p99" ] ~docv:"S" ~doc)
  in
  let json_arg =
    let doc = "Write per-run throughput/latency results as JSON to this file." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let doc = "Open-loop load generation: measure serving throughput and \
             latency at fixed offered rates." in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const loadgen $ seed_arg $ payload_arg $ rates_arg $ process_arg
      $ burst_arg $ peak_arg $ service_rate_arg $ quantized_arg $ slo_arg
      $ json_arg)

let check_cmd =
  let trials_arg =
    let doc = "Number of random (model, batch) cases to generate." in
    Arg.(value & opt int 100 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let backend_arg =
    let doc =
      "Deployment path to check: spatial, mat-runtime, or p4. Repeatable; \
       default all."
    in
    Arg.(value & opt_all string [] & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let family_arg =
    let doc =
      "Model family to generate: mlp, tree, forest, svm, or kmeans. \
       Repeatable; default all."
    in
    Arg.(value & opt_all string [] & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let artifact_arg =
    let doc = "Write shrunk JSON reproducers for failures into this directory." in
    Arg.(value & opt (some string) None & info [ "artifact-dir" ] ~docv:"DIR" ~doc)
  in
  let max_shrink_arg =
    let doc = "Shrinker budget: predicate evaluations per failure." in
    Arg.(value & opt int 400 & info [ "max-shrink" ] ~docv:"N" ~doc)
  in
  let replay_arg =
    let doc = "Re-run the oracle on a persisted reproducer artifact instead \
               of generating new cases." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let doc = "Differential conformance: random models through every \
             deployment path vs the floating-point reference." in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const check $ seed_arg $ trials_arg $ backend_arg $ family_arg
      $ artifact_arg $ max_shrink_arg $ replay_arg)

let main_cmd =
  let doc = "Homunculus: auto-generating data-plane ML pipelines" in
  Cmd.group (Cmd.info "homc" ~version:"1.0.0" ~doc)
    [
      compile_cmd; search_cmd; compose_cmd; inspect_cmd; datasets_cmd; sweep_cmd;
      place_cmd; simulate_cmd; export_trace_cmd; serve_cmd; loadgen_cmd;
      check_cmd;
    ]

let () =
  (* HOMUNCULUS_VERBOSE=1 turns on compiler progress logging. *)
  (match Sys.getenv_opt "HOMUNCULUS_VERBOSE" with
  | Some ("1" | "true" | "yes") ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
  | Some _ | None -> ());
  exit (Cmd.eval' main_cmd)
