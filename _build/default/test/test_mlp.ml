open Homunculus_ml
module Rng = Homunculus_util.Rng

let feq6 = Alcotest.(check (float 1e-6))

let small_mlp ?(seed = 1) () =
  Mlp.create (Rng.create seed) ~input_dim:3 ~hidden:[| 4; 3 |] ~output_dim:2 ()

(* Activations *)

let test_activation_apply () =
  feq6 "relu+" 2. (Activation.apply Activation.Relu 2.);
  feq6 "relu-" 0. (Activation.apply Activation.Relu (-2.));
  feq6 "linear" (-2.) (Activation.apply Activation.Linear (-2.));
  feq6 "sigmoid 0" 0.5 (Activation.apply Activation.Sigmoid 0.);
  feq6 "tanh 0" 0. (Activation.apply Activation.Tanh 0.)

let test_activation_derivative_matches_fd () =
  List.iter
    (fun act ->
      List.iter
        (fun z ->
          let h = 1e-6 in
          let fd =
            (Activation.apply act (z +. h) -. Activation.apply act (z -. h))
            /. (2. *. h)
          in
          let a = Activation.apply act z in
          let d = Activation.derivative act ~z ~a in
          Alcotest.(check (float 1e-4))
            (Printf.sprintf "%s at %g" (Activation.name act) z) fd d)
        [ -1.7; -0.3; 0.4; 2.2 ])
    [ Activation.Relu; Sigmoid; Tanh; Linear ]

let test_activation_names_roundtrip () =
  Array.iter
    (fun a ->
      Alcotest.(check bool) "roundtrip" true
        (Activation.of_name (Activation.name a) = a))
    Activation.all

let test_activation_unknown_name () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Activation.of_name: unknown activation gelu") (fun () ->
      ignore (Activation.of_name "gelu"))

(* Loss *)

let test_softmax_ce_value () =
  (* Uniform logits over 2 classes: loss = log 2. *)
  feq6 "log 2" (log 2.)
    (Loss.value Loss.Softmax_cross_entropy ~logits:[| 0.; 0. |] ~target:[| 1.; 0. |])

let test_softmax_ce_gradient () =
  let g =
    Loss.gradient Loss.Softmax_cross_entropy ~logits:[| 0.; 0. |]
      ~target:[| 1.; 0. |]
  in
  Alcotest.(check (array (float 1e-9))) "softmax - target" [| -0.5; 0.5 |] g

let test_mse () =
  feq6 "value" 2.5 (Loss.value Loss.Mse ~logits:[| 1.; 3. |] ~target:[| 0.; 1. |]);
  Alcotest.(check (array (float 1e-9))) "gradient" [| 1.; 2. |]
    (Loss.gradient Loss.Mse ~logits:[| 1.; 3. |] ~target:[| 0.; 1. |])

let test_loss_gradient_matches_fd () =
  let logits = [| 0.3; -0.7; 1.1 |] and target = [| 0.; 1.; 0. |] in
  let g = Loss.gradient Loss.Softmax_cross_entropy ~logits ~target in
  Array.iteri
    (fun i _ ->
      let h = 1e-6 in
      let bump delta =
        let l = Array.copy logits in
        l.(i) <- l.(i) +. delta;
        Loss.value Loss.Softmax_cross_entropy ~logits:l ~target
      in
      let fd = (bump h -. bump (-.h)) /. (2. *. h) in
      Alcotest.(check (float 1e-4)) (Printf.sprintf "dL/dl%d" i) fd g.(i))
    logits

(* MLP structure *)

let test_mlp_shapes () =
  let m = small_mlp () in
  Alcotest.(check (array int)) "layer sizes" [| 3; 4; 3; 2 |] (Mlp.layer_sizes m);
  Alcotest.(check int) "params" ((3 * 4) + 4 + (4 * 3) + 3 + (3 * 2) + 2)
    (Mlp.param_count m)

let test_mlp_rejects_bad_dims () =
  Alcotest.check_raises "zero hidden"
    (Invalid_argument "Mlp.create: non-positive hidden size") (fun () ->
      ignore
        (Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[| 0 |] ~output_dim:2 ()))

let test_mlp_deterministic_init () =
  let a = small_mlp ~seed:7 () and b = small_mlp ~seed:7 () in
  let x = [| 0.5; -0.2; 1.0 |] in
  Alcotest.(check (array (float 1e-12))) "same outputs" (Mlp.logits a x)
    (Mlp.logits b x)

let test_mlp_proba_is_distribution () =
  let m = small_mlp () in
  let p = Mlp.predict_proba m [| 1.; 2.; 3. |] in
  feq6 "sums to 1" 1. (Array.fold_left ( +. ) 0. p);
  Array.iter (fun v -> Alcotest.(check bool) "in [0,1]" true (v >= 0. && v <= 1.)) p

let test_mlp_predict_argmax () =
  let m = small_mlp () in
  let x = [| 0.1; 0.2; 0.3 |] in
  let p = Mlp.predict_proba m x in
  Alcotest.(check int) "argmax" (Homunculus_util.Stats.argmax p) (Mlp.predict m x)

let test_mlp_copy_independent () =
  let a = small_mlp () in
  let b = Mlp.copy a in
  let params = Mlp.parameter_buffers b in
  params.(0).(0) <- params.(0).(0) +. 10.;
  let x = [| 1.; 1.; 1. |] in
  Alcotest.(check bool) "outputs diverge" true (Mlp.logits a x <> Mlp.logits b x)

(* The critical correctness test: backprop gradients match finite
   differences on every parameter of a small network. *)
let test_gradient_check () =
  let m =
    Mlp.create (Rng.create 3) ~input_dim:2 ~hidden:[| 3 |] ~output_dim:2
      ~hidden_act:Activation.Tanh ()
  in
  let x = [| 0.7; -1.2 |] and target = [| 0.; 1. |] in
  Mlp.zero_grads m;
  let _ = Mlp.train_sample m ~x ~target in
  let params = Mlp.parameter_buffers m in
  let grads = Mlp.gradient_buffers m in
  let h = 1e-5 in
  Array.iteri
    (fun b buf ->
      Array.iteri
        (fun i _ ->
          let orig = buf.(i) in
          buf.(i) <- orig +. h;
          let lp =
            Loss.value (Mlp.loss m) ~logits:(Mlp.logits m x) ~target
          in
          buf.(i) <- orig -. h;
          let lm =
            Loss.value (Mlp.loss m) ~logits:(Mlp.logits m x) ~target
          in
          buf.(i) <- orig;
          let fd = (lp -. lm) /. (2. *. h) in
          Alcotest.(check (float 1e-4))
            (Printf.sprintf "buffer %d param %d" b i)
            fd
            grads.(b).(i))
        buf)
    params

let test_gradient_accumulates () =
  let m = small_mlp () in
  let x = [| 1.; 0.; -1. |] and target = [| 1.; 0. |] in
  Mlp.zero_grads m;
  let _ = Mlp.train_sample m ~x ~target in
  let g1 = Array.map Array.copy (Mlp.gradient_buffers m) in
  let _ = Mlp.train_sample m ~x ~target in
  let g2 = Mlp.gradient_buffers m in
  Array.iteri
    (fun b buf ->
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-9)) "doubled" (2. *. g1.(b).(i)) v)
        buf)
    g2

let test_scale_grads () =
  let m = small_mlp () in
  Mlp.zero_grads m;
  let _ = Mlp.train_sample m ~x:[| 1.; 1.; 1. |] ~target:[| 1.; 0. |] in
  let before = Array.map Array.copy (Mlp.gradient_buffers m) in
  Mlp.scale_grads m 0.5;
  Array.iteri
    (fun b buf ->
      Array.iteri
        (fun i v -> Alcotest.(check (float 1e-12)) "halved" (0.5 *. before.(b).(i)) v)
        buf)
    (Mlp.gradient_buffers m)

let suite =
  [
    Alcotest.test_case "activation apply" `Quick test_activation_apply;
    Alcotest.test_case "activation derivative vs FD" `Quick
      test_activation_derivative_matches_fd;
    Alcotest.test_case "activation names" `Quick test_activation_names_roundtrip;
    Alcotest.test_case "activation unknown" `Quick test_activation_unknown_name;
    Alcotest.test_case "softmax CE value" `Quick test_softmax_ce_value;
    Alcotest.test_case "softmax CE gradient" `Quick test_softmax_ce_gradient;
    Alcotest.test_case "mse" `Quick test_mse;
    Alcotest.test_case "loss gradient vs FD" `Quick test_loss_gradient_matches_fd;
    Alcotest.test_case "mlp shapes" `Quick test_mlp_shapes;
    Alcotest.test_case "mlp rejects bad dims" `Quick test_mlp_rejects_bad_dims;
    Alcotest.test_case "mlp deterministic init" `Quick test_mlp_deterministic_init;
    Alcotest.test_case "proba is distribution" `Quick test_mlp_proba_is_distribution;
    Alcotest.test_case "predict = argmax" `Quick test_mlp_predict_argmax;
    Alcotest.test_case "copy independent" `Quick test_mlp_copy_independent;
    Alcotest.test_case "gradient check (FD)" `Quick test_gradient_check;
    Alcotest.test_case "gradients accumulate" `Quick test_gradient_accumulates;
    Alcotest.test_case "scale grads" `Quick test_scale_grads;
  ]
