open Homunculus_util

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_copy_independent () =
  let a = Rng.create 9 in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b);
  let _ = Rng.int64 a in
  let va = Rng.int64 a and vb = Rng.int64 b in
  Alcotest.(check bool) "desynced after extra draw" true (va <> vb)

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = Array.init 20 (fun _ -> Rng.int a 1000) in
  let ys = Array.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_range () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_uniform_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 500 do
    let v = Rng.uniform rng (-3.) 7. in
    Alcotest.(check bool) "in [-3,7)" true (v >= -3. && v < 7.)
  done

let test_float_mean () =
  let rng = Rng.create 8 in
  let xs = Array.init 20000 (fun _ -> Rng.float rng 1.) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (m -. 0.5) < 0.02)

let test_gaussian_moments () =
  let rng = Rng.create 10 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng ~mu:2. ~sigma:3. ()) in
  Alcotest.(check bool) "mean near 2" true (Float.abs (Stats.mean xs -. 2.) < 0.1);
  Alcotest.(check bool) "std near 3" true (Float.abs (Stats.std xs -. 3.) < 0.1)

let test_bernoulli_rate () =
  let rng = Rng.create 12 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10000. in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.03)

let test_exponential_mean () =
  let rng = Rng.create 13 in
  let xs = Array.init 20000 (fun _ -> Rng.exponential rng 4.) in
  Alcotest.(check bool) "mean near 1/4" true
    (Float.abs (Stats.mean xs -. 0.25) < 0.02);
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x >= 0.) xs)

let test_exponential_rejects () =
  let rng = Rng.create 13 in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rng.exponential rng 0.))

let test_pareto_support () =
  let rng = Rng.create 14 in
  for _ = 1 to 1000 do
    let v = Rng.pareto rng ~xm:2. ~alpha:1.5 in
    Alcotest.(check bool) "v >= xm" true (v >= 2.)
  done

let test_lognormal_positive () =
  let rng = Rng.create 15 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.lognormal rng ~mu:0. ~sigma:1. > 0.)
  done

let test_choice () =
  let rng = Rng.create 16 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choice rng arr) arr)
  done

let test_choice_empty () =
  let rng = Rng.create 16 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Rng.choice rng ([||] : int array)))

let test_choice_weighted () =
  let rng = Rng.create 17 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10000 do
    let v = Rng.choice_weighted rng [| ("x", 9.); ("y", 1.); ("z", 0.) |] in
    Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
  done;
  let get k = Option.value (Hashtbl.find_opt counts k) ~default:0 in
  Alcotest.(check int) "zero weight never chosen" 0 (get "z");
  Alcotest.(check bool) "x dominates" true (get "x" > 7 * get "y")

let test_choice_weighted_zero_total () =
  let rng = Rng.create 17 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.choice_weighted: weights sum to zero") (fun () ->
      ignore (Rng.choice_weighted rng [| ("x", 0.) |]))

let test_shuffle_permutes () =
  let rng = Rng.create 18 in
  let arr = Array.init 50 (fun i -> i) in
  let orig = Array.copy arr in
  Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" orig sorted;
  Alcotest.(check bool) "order changed" true (arr <> orig)

let test_permutation () =
  let rng = Rng.create 19 in
  let p = Rng.permutation rng 30 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 30 Fun.id) sorted

let test_sample_indices_distinct () =
  let rng = Rng.create 20 in
  for _ = 1 to 50 do
    let s = Rng.sample_indices rng ~n:20 ~k:10 in
    Alcotest.(check int) "k values" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 0 to 8 do
      Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i + 1))
    done;
    Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 20)) s
  done

let test_sample_indices_full () =
  let rng = Rng.create 21 in
  let s = Rng.sample_indices rng ~n:5 ~k:5 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "covers all" [| 0; 1; 2; 3; 4 |] sorted

let test_sample_indices_rejects () =
  let rng = Rng.create 21 in
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample_indices: k > n")
    (fun () -> ignore (Rng.sample_indices rng ~n:3 ~k:4))

let () = ignore check_float

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential rejects" `Quick test_exponential_rejects;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
    Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
    Alcotest.test_case "choice member" `Quick test_choice;
    Alcotest.test_case "choice empty" `Quick test_choice_empty;
    Alcotest.test_case "choice weighted" `Quick test_choice_weighted;
    Alcotest.test_case "choice weighted zero" `Quick test_choice_weighted_zero_total;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "sample indices distinct" `Quick test_sample_indices_distinct;
    Alcotest.test_case "sample indices full" `Quick test_sample_indices_full;
    Alcotest.test_case "sample indices rejects" `Quick test_sample_indices_rejects;
  ]
