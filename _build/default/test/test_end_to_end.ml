(* The complete Fig. 3 flow as one integration test: dataset on disk ->
   @DataLoader -> Model spec -> constrained platform -> generate -> feasible
   artifact + backend code + deployable runtime. *)
open Homunculus_alchemy
open Homunculus_backends
open Homunculus_core
module Rng = Homunculus_util.Rng
module Ml = Homunculus_ml

let tiny_options =
  {
    Compiler.default_options with
    Compiler.bo_settings =
      {
        Homunculus_bo.Optimizer.default_settings with
        Homunculus_bo.Optimizer.n_init = 3;
        n_iter = 3;
        pool_size = 32;
      };
  }

let with_temp_csv dataset f =
  let path = Filename.temp_file "homunculus_e2e" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ml.Dataset_io.save ~path dataset;
      f path)

let blob_dataset seed n =
  let rng = Rng.create seed in
  let x =
    Array.init n (fun i ->
        let mu = if i mod 2 = 0 then -2. else 2. in
        [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])
  in
  Ml.Dataset.create ~feature_names:[| "a"; "b" |] ~x
    ~y:(Array.init n (fun i -> i mod 2))
    ~n_classes:2 ()

let test_fig3_flow_taurus () =
  with_temp_csv (blob_dataset 1 160) (fun train_csv ->
      with_temp_csv (blob_dataset 2 80) (fun test_csv ->
          (* 1. @DataLoader from CSV files, as in Fig. 3. *)
          let loader () =
            Model_spec.data
              ~train:(Ml.Dataset_io.load train_csv)
              ~test:(Ml.Dataset_io.load test_csv)
          in
          let spec =
            Model_spec.make ~name:"e2e" ~metric:Model_spec.F1
              ~algorithms:[ Model_spec.Tree ] ~loader ()
          in
          (* 2. Platform with tightened constraints. *)
          let platform =
            Platform.constrain (Platform.taurus ()) ~min_throughput_gpps:1.
              ~max_latency_ns:500. ()
          in
          (* 3. generate. *)
          let result =
            Compiler.generate ~options:tiny_options platform (Schedule.model spec)
          in
          let m = List.hd result.Compiler.models in
          let artifact = m.Compiler.artifact in
          (* 4. The artifact is feasible, accurate, and deployable. *)
          Alcotest.(check bool) "feasible" true
            artifact.Evaluator.verdict.Resource.feasible;
          Alcotest.(check bool) "accurate" true (artifact.Evaluator.objective > 0.8);
          (match m.Compiler.code with
          | Some code ->
              Alcotest.(check bool) "spatial emitted" true (String.length code > 100)
          | None -> Alcotest.fail "expected generated code");
          (* 5. Pipeline-level verdict matches the single model. *)
          Alcotest.(check bool) "pipeline feasible" true
            result.Compiler.combined.Schedule.verdict.Resource.feasible;
          (* 6. The IR round-trips through persistence and still classifies
             the raw on-disk test rows identically. *)
          let ir = artifact.Evaluator.model_ir in
          let reloaded = Ir_io.of_json (Ir_io.to_json ir) in
          let test_data = Ml.Dataset_io.load test_csv in
          Array.iter
            (fun row ->
              Alcotest.(check int) "persisted model agrees"
                (Inference.predict ir row)
                (Inference.predict reloaded row))
            test_data.Ml.Dataset.x))

let test_fig3_flow_tofino_with_runtime () =
  with_temp_csv (blob_dataset 3 160) (fun train_csv ->
      with_temp_csv (blob_dataset 4 80) (fun test_csv ->
          let loader () =
            Model_spec.data
              ~train:(Ml.Dataset_io.load train_csv)
              ~test:(Ml.Dataset_io.load test_csv)
          in
          let spec =
            Model_spec.make ~name:"e2e_mat" ~metric:Model_spec.F1
              ~algorithms:[ Model_spec.Tree; Model_spec.Svm ] ~loader ()
          in
          let result =
            Compiler.generate ~options:tiny_options (Platform.tofino ())
              (Schedule.model spec)
          in
          let m = List.hd result.Compiler.models in
          let artifact = m.Compiler.artifact in
          Alcotest.(check bool) "fits the MATs" true
            artifact.Evaluator.verdict.Resource.feasible;
          (* P4 program + entries emitted. *)
          (match m.Compiler.code with
          | Some code ->
              let has sub =
                let n = String.length code and l = String.length sub in
                let rec go i = i + l <= n && (String.sub code i l = sub || go (i + 1)) in
                go 0
              in
              Alcotest.(check bool) "p4 program" true (has "control Ingress");
              Alcotest.(check bool) "entries" true (has "table_add")
          | None -> Alcotest.fail "expected P4 code");
          (* The quantized MAT runtime executes the artifact with high
             fidelity on the raw test rows. *)
          let test_data = Ml.Dataset_io.load test_csv in
          let rt =
            Runtime.load ~calibration:test_data.Ml.Dataset.x
              artifact.Evaluator.model_ir
          in
          Alcotest.(check bool) "runtime fidelity > 0.9" true
            (Runtime.fidelity rt artifact.Evaluator.model_ir
               ~x:test_data.Ml.Dataset.x
            > 0.9)))

let suite =
  [
    Alcotest.test_case "fig3 flow on taurus" `Quick test_fig3_flow_taurus;
    Alcotest.test_case "fig3 flow on tofino + runtime" `Quick
      test_fig3_flow_tofino_with_runtime;
  ]
