open Homunculus_ml
module Rng = Homunculus_util.Rng

(* A linearly separable 2D blob pair any working trainer must nail. *)
let blobs rng n =
  let x = Array.make (2 * n) [||] in
  let y = Array.make (2 * n) 0 in
  for i = 0 to n - 1 do
    x.(i) <- [| Rng.gaussian rng ~mu:(-2.) (); Rng.gaussian rng ~mu:(-2.) () |];
    y.(i) <- 0;
    x.(n + i) <- [| Rng.gaussian rng ~mu:2. (); Rng.gaussian rng ~mu:2. () |];
    y.(n + i) <- 1
  done;
  Dataset.create ~x ~y ~n_classes:2 ()

(* Optimizer unit behaviour *)

let test_sgd_step () =
  let opt = Optimizer.create (Optimizer.sgd ~lr:0.1 ()) [| 2 |] in
  let params = [| [| 1.; 2. |] |] in
  Optimizer.step opt ~params ~grads:[| [| 1.; -1. |] |];
  Alcotest.(check (array (float 1e-9))) "moved against gradient" [| 0.9; 2.1 |]
    params.(0)

let test_sgd_momentum_accumulates () =
  let opt = Optimizer.create (Optimizer.sgd ~lr:0.1 ~momentum:0.9 ()) [| 1 |] in
  let params = [| [| 0. |] |] in
  Optimizer.step opt ~params ~grads:[| [| 1. |] |];
  let after_one = params.(0).(0) in
  Optimizer.step opt ~params ~grads:[| [| 1. |] |];
  let second_step = params.(0).(0) -. after_one in
  Alcotest.(check bool) "second step larger" true
    (Float.abs second_step > Float.abs after_one)

let test_adam_descends () =
  (* Minimize f(x) = x^2 from x = 5. *)
  let opt = Optimizer.create (Optimizer.adam ~lr:0.1 ()) [| 1 |] in
  let params = [| [| 5. |] |] in
  for _ = 1 to 200 do
    let g = 2. *. params.(0).(0) in
    Optimizer.step opt ~params ~grads:[| [| g |] |]
  done;
  Alcotest.(check bool) "near 0" true (Float.abs params.(0).(0) < 0.1)

let test_optimizer_rejects_mismatch () =
  let opt = Optimizer.create (Optimizer.sgd ~lr:0.1 ()) [| 2 |] in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Optimizer.step: buffer size mismatch") (fun () ->
      Optimizer.step opt ~params:[| [| 1. |] |] ~grads:[| [| 1. |] |])

let test_learning_rate () =
  Alcotest.(check (float 0.)) "sgd" 0.3 (Optimizer.learning_rate (Optimizer.sgd ~lr:0.3 ()));
  Alcotest.(check (float 0.)) "adam" 0.01 (Optimizer.learning_rate (Optimizer.adam ~lr:0.01 ()))

(* Training loop *)

let test_fit_learns_blobs () =
  let rng = Rng.create 5 in
  let train = blobs rng 100 in
  let test = blobs rng 50 in
  let m = Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[| 8 |] ~output_dim:2 () in
  let config = { Train.default_config with Train.epochs = 20; patience = None } in
  let history = Train.fit (Rng.create 2) m config train in
  Alcotest.(check bool) "f1 above 0.95" true (Train.evaluate_f1 m test > 0.95);
  Alcotest.(check int) "ran all epochs" 20 history.Train.epochs_run

let test_fit_loss_decreases () =
  let rng = Rng.create 6 in
  let train = blobs rng 100 in
  let m = Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[| 8 |] ~output_dim:2 () in
  let config = { Train.default_config with Train.epochs = 15; patience = None } in
  let h = Train.fit (Rng.create 2) m config train in
  let first = h.Train.train_loss.(0) in
  let last = h.Train.train_loss.(Array.length h.Train.train_loss - 1) in
  Alcotest.(check bool) "loss shrinks" true (last < first)

let test_fit_early_stopping () =
  let rng = Rng.create 7 in
  let train = blobs rng 100 in
  let validation = blobs rng 40 in
  let m = Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[| 8 |] ~output_dim:2 () in
  let config =
    { Train.default_config with Train.epochs = 100; patience = Some 3 }
  in
  let h = Train.fit (Rng.create 2) m config ~validation train in
  (* The task saturates immediately; patience should cut the run short. *)
  Alcotest.(check bool) "stopped early" true (h.Train.epochs_run < 100);
  Alcotest.(check int) "validation tracked" h.Train.epochs_run
    (Array.length h.Train.val_metric)

let test_fit_rejects_bad_config () =
  let rng = Rng.create 8 in
  let train = blobs rng 10 in
  let m = Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[||] ~output_dim:2 () in
  Alcotest.check_raises "epochs" (Invalid_argument "Train.fit: epochs <= 0")
    (fun () ->
      ignore
        (Train.fit rng m { Train.default_config with Train.epochs = 0 } train))

let test_evaluate_accuracy () =
  let rng = Rng.create 9 in
  let d = blobs rng 50 in
  let m = Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[| 8 |] ~output_dim:2 () in
  let acc = Train.evaluate_accuracy m d in
  Alcotest.(check bool) "in [0,1]" true (acc >= 0. && acc <= 1.)

let test_multiclass_macro_f1_path () =
  (* 3-class blobs exercise the macro-F1 branch of evaluate_f1. *)
  let rng = Rng.create 10 in
  let n = 60 in
  let x = Array.init (3 * n) (fun i ->
      let c = i / n in
      let mu = 6. *. float_of_int (c - 1) in
      [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])
  in
  let y = Array.init (3 * n) (fun i -> i / n) in
  let d = Dataset.create ~x ~y ~n_classes:3 () in
  let m = Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[| 12 |] ~output_dim:3 () in
  let config =
    {
      Train.default_config with
      Train.epochs = 40;
      patience = None;
      optimizer = Optimizer.adam ~lr:1e-2 ();
    }
  in
  let _ = Train.fit (Rng.create 2) m config d in
  Alcotest.(check bool) "macro f1 high" true (Train.evaluate_f1 m d > 0.9)

let suite =
  [
    Alcotest.test_case "sgd step" `Quick test_sgd_step;
    Alcotest.test_case "sgd momentum" `Quick test_sgd_momentum_accumulates;
    Alcotest.test_case "adam descends" `Quick test_adam_descends;
    Alcotest.test_case "optimizer rejects mismatch" `Quick test_optimizer_rejects_mismatch;
    Alcotest.test_case "learning rate accessor" `Quick test_learning_rate;
    Alcotest.test_case "fit learns blobs" `Quick test_fit_learns_blobs;
    Alcotest.test_case "fit loss decreases" `Quick test_fit_loss_decreases;
    Alcotest.test_case "early stopping" `Quick test_fit_early_stopping;
    Alcotest.test_case "rejects bad config" `Quick test_fit_rejects_bad_config;
    Alcotest.test_case "evaluate accuracy" `Quick test_evaluate_accuracy;
    Alcotest.test_case "multiclass macro f1" `Quick test_multiclass_macro_f1_path;
  ]
