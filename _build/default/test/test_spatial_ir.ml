(* The Spatial AST: printer, templates, and IR-level analyses. *)
open Homunculus_backends
open Spatial_ir

let render stmt = Format.asprintf "%a" pp_stmt stmt
let render_expr e = Format.asprintf "%a" pp_expr e

let test_expr_printing () =
  Alcotest.(check string) "index" "w(i, j)"
    (render_expr (Index { base = "w"; indices = [ Var "i"; Var "j" ] }));
  Alcotest.(check string) "binop" "a * b"
    (render_expr (Binop { op = "*"; lhs = Var "a"; rhs = Var "b" }));
  Alcotest.(check string) "call" "max(z, 0.to[T])"
    (render_expr (Call { fn = "max"; args = [ Var "z"; Var "0.to[T]" ] }));
  Alcotest.(check string) "const" "0.500000" (render_expr (Const 0.5));
  Alcotest.(check string) "int" "7" (render_expr (Int_const 7))

let test_stmt_printing () =
  Alcotest.(check string) "val" "val x = y"
    (render (Val { name = "x"; value = Var "y" }));
  Alcotest.(check string) "sram buffered" "val b = SRAM[T](8).buffer"
    (render (Sram_alloc { name = "b"; size = 8; buffered = true }));
  Alcotest.(check string) "sram plain" "val b = SRAM[T](8)"
    (render (Sram_alloc { name = "b"; size = 8; buffered = false }));
  let foreach =
    render
      (Foreach
         { var = "i"; bound = 4; par = 2; body = [ Comment "body" ] })
  in
  Alcotest.(check bool) "foreach header" true
    (String.length foreach > 0
    && String.sub foreach 0 28 = "Foreach(0 until 4 par 2) { i")

let test_dot_product_template () =
  let code =
    render (dot_product ~target:"d" ~weights:"w" ~input:"x" ~row:(Var "i") ~n:16)
  in
  let has sub =
    let n = String.length code and m = String.length sub in
    let rec go i = i + m <= n && (String.sub code i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "reduce register" true (has "Reduce(Reg[T](0.to[T]))");
  Alcotest.(check bool) "8-wide" true (has "par 8");
  Alcotest.(check bool) "elementwise product" true (has "w(i, j) * x(j)");
  Alcotest.(check bool) "sum combine" true (has "{ _ + _ }")

let test_dense_layer_template () =
  let code =
    render
      (dense_layer ~layer_idx:0 ~prefix:"m" ~src:"a" ~dst:"b" ~n_in:4 ~n_out:3
         ~activation:"relu")
  in
  let has sub =
    let n = String.length code and m = String.length sub in
    let rec go i = i + m <= n && (String.sub code i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "foreach neurons" true (has "Foreach(0 until 3");
  Alcotest.(check bool) "bias add" true (has "acc + m_B0(i)");
  Alcotest.(check bool) "activation" true (has "max(z, 0.to[T])");
  Alcotest.(check bool) "writes dst" true (has "b(i) =")

let test_unknown_activation_rejected () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Spatial_ir.activation_expr: unknown gelu") (fun () ->
      ignore
        (dense_layer ~layer_idx:0 ~prefix:"m" ~src:"a" ~dst:"b" ~n_in:2 ~n_out:2
           ~activation:"gelu"))

let layer n_in n_out =
  {
    Model_ir.n_in;
    n_out;
    activation = "relu";
    weights = Array.make_matrix n_out n_in 0.25;
    biases = Array.make n_out 0.;
  }

let test_program_analyses () =
  let model = Model_ir.Dnn { name = "m"; layers = [| layer 8 4; layer 4 2 |] } in
  let p = Spatial.program_of model in
  (* Two Reduce(par 8) + Reduce(par 4) + two Foreach(par 1). *)
  Alcotest.(check int) "lanes" (8 + 4 + 1 + 1) (count_parallel_lanes p);
  Alcotest.(check bool) "statements counted" true (count_statements p > 10)

let test_print_parses_as_lines () =
  let model = Model_ir.Dnn { name = "m"; layers = [| layer 3 2 |] } in
  let code = print (Spatial.program_of model) in
  (* Balanced braces in the emitted program. *)
  let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 code in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced parens" (count '(') (count ')')

let test_all_algorithms_balanced () =
  let models =
    [
      Model_ir.Kmeans { name = "k"; centroids = Array.make_matrix 3 5 0.1 };
      Model_ir.Svm
        { name = "s"; class_weights = Array.make_matrix 2 5 0.1; biases = [| 0.; 0. |] };
      Model_ir.Tree
        {
          name = "t";
          root =
            Homunculus_ml.Decision_tree.Split
              {
                feature = 0;
                threshold = 0.5;
                left = Homunculus_ml.Decision_tree.Leaf { distribution = [| 1.; 0. |] };
                right = Homunculus_ml.Decision_tree.Leaf { distribution = [| 0.; 1. |] };
              };
          n_features = 5;
          n_classes = 2;
        };
    ]
  in
  List.iter
    (fun m ->
      let code = Spatial.emit m in
      let count c =
        String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 code
      in
      Alcotest.(check int) (Model_ir.algorithm m ^ " braces") (count '{') (count '}'))
    models

let test_bundle_namespaces_duplicates () =
  let m = Model_ir.Dnn { name = "ad"; layers = [| layer 3 2 |] } in
  let code = Spatial.emit_bundle ~name:"chain" [ m; m; m ] in
  let has sub =
    let n = String.length code and m = String.length sub in
    let rec go i = i + m <= n && (String.sub code i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "first instance" true (has "=== instance ad ===");
  Alcotest.(check bool) "suffixed instances" true
    (has "=== instance ad_1 ===" && has "=== instance ad_2 ===");
  Alcotest.(check bool) "distinct weight tables" true (has "ad_1_W0" && has "ad_2_W0");
  Alcotest.(check bool) "one verdict per instance" true
    (has "verdict_ad " && has "verdict_ad_2");
  let count c =
    String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 code
  in
  Alcotest.(check int) "balanced braces" (count '{') (count '}')

let test_bundle_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Spatial.emit_bundle: no models")
    (fun () -> ignore (Spatial.emit_bundle ~name:"x" []))

let suite =
  [
    Alcotest.test_case "expr printing" `Quick test_expr_printing;
    Alcotest.test_case "stmt printing" `Quick test_stmt_printing;
    Alcotest.test_case "dot product template" `Quick test_dot_product_template;
    Alcotest.test_case "dense layer template" `Quick test_dense_layer_template;
    Alcotest.test_case "unknown activation" `Quick test_unknown_activation_rejected;
    Alcotest.test_case "program analyses" `Quick test_program_analyses;
    Alcotest.test_case "balanced output" `Quick test_print_parses_as_lines;
    Alcotest.test_case "all algorithms balanced" `Quick test_all_algorithms_balanced;
    Alcotest.test_case "bundle namespacing" `Quick test_bundle_namespaces_duplicates;
    Alcotest.test_case "bundle rejects empty" `Quick test_bundle_rejects_empty;
  ]
