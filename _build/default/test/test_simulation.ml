(* Flow-state capacity and the cycle-accurate grid pipeline simulator. *)
open Homunculus_backends
open Homunculus_netdata

(* Flow_table *)

let test_capacity_formula () =
  let t = Flow_table.create ~sram_bytes:(1 lsl 20) ~marker_bins:151 () in
  Alcotest.(check int) "1MiB / (151*2)" (1048576 / 302) (Flow_table.capacity t);
  let t30 = Flow_table.create ~sram_bytes:(1 lsl 20) ~marker_bins:30 () in
  (* The paper's claim: a 5x smaller marker tracks ~5x more flows. *)
  let ratio =
    float_of_int (Flow_table.capacity t30) /. float_of_int (Flow_table.capacity t)
  in
  Alcotest.(check bool) "5x capacity" true (ratio > 4.9 && ratio < 5.2)

let test_create_validates () =
  Alcotest.check_raises "no slot"
    (Invalid_argument "Flow_table.create: no slot fits the SRAM") (fun () ->
      ignore (Flow_table.create ~sram_bytes:10 ~marker_bins:151 ()))

let test_record_and_read () =
  let t = Flow_table.create ~sram_bytes:4096 ~marker_bins:4 () in
  let k = Flow_table.key_of_ints 1 2 in
  Flow_table.record t k ~value:1. ~bin:0;
  Flow_table.record t k ~value:2. ~bin:3;
  (match Flow_table.marker t k with
  | Some bins -> Alcotest.(check (array (float 0.))) "marker" [| 1.; 0.; 0.; 2. |] bins
  | None -> Alcotest.fail "marker missing");
  Alcotest.(check int) "one active flow" 1 (Flow_table.active_flows t)

let test_record_validates_bin () =
  let t = Flow_table.create ~sram_bytes:4096 ~marker_bins:4 () in
  Alcotest.check_raises "bad bin" (Invalid_argument "Flow_table.record: bad bin")
    (fun () -> Flow_table.record t (Flow_table.key_of_ints 1 2) ~value:1. ~bin:4)

let test_eviction_on_collision () =
  (* A 1-slot table: any second flow evicts the first. *)
  let t = Flow_table.create ~sram_bytes:8 ~marker_bins:4 () in
  Alcotest.(check int) "single slot" 1 (Flow_table.capacity t);
  let a = Flow_table.key_of_ints 1 2 and b = Flow_table.key_of_ints 3 4 in
  Flow_table.record t a ~value:1. ~bin:0;
  Flow_table.record t b ~value:1. ~bin:0;
  Alcotest.(check int) "one eviction" 1 (Flow_table.evictions t);
  Alcotest.(check bool) "a lost its state" true (Flow_table.marker t a = None);
  (match Flow_table.marker t b with
  | Some bins -> Alcotest.(check (float 0.)) "b fresh" 1. bins.(0)
  | None -> Alcotest.fail "b should own the slot")

let test_stress_underload_vs_overload () =
  let t = Flow_table.create ~sram_bytes:65536 ~marker_bins:30 () in
  let cap = Flow_table.capacity t in
  let light =
    Flow_table.stress
      (Flow_table.create ~sram_bytes:65536 ~marker_bins:30 ())
      ~n_flows:(cap / 10) ~touches_per_flow:3
  in
  let heavy =
    Flow_table.stress
      (Flow_table.create ~sram_bytes:65536 ~marker_bins:30 ())
      ~n_flows:(cap * 4) ~touches_per_flow:3
  in
  Alcotest.(check bool) "light load mostly intact" true (light > 0.85);
  Alcotest.(check bool) "overload collapses" true (heavy < 0.4);
  Alcotest.(check bool) "monotone" true (light > heavy)

(* Grid_sim *)

let layer n_in n_out =
  {
    Model_ir.n_in;
    n_out;
    activation = "relu";
    weights = Array.make_matrix n_out n_in 0.1;
    biases = Array.make n_out 0.;
  }

let small_dnn =
  Model_ir.Dnn { name = "m"; layers = [| layer 7 12; layer 12 8; layer 8 2 |] }

let huge_dnn =
  Model_ir.Dnn
    { name = "big"; layers = [| layer 64 64; layer 64 64; layer 64 64; layer 64 2 |] }

let grid = Taurus.default_grid

let test_grid_sim_agrees_with_analytical () =
  List.iter
    (fun model ->
      Alcotest.(check bool)
        (Model_ir.name model ^ " agrees")
        true
        (Grid_sim.agrees_with_analytical grid model))
    [
      small_dnn; huge_dnn;
      Model_ir.Kmeans { name = "k"; centroids = Array.make_matrix 5 7 0.1 };
      Model_ir.Svm
        { name = "s"; class_weights = Array.make_matrix 3 7 0.1; biases = Array.make 3 0. };
    ]

let test_grid_sim_pipelining_overlaps () =
  (* With II = 1, n packets leave in first_latency + (n - 1) cycles. *)
  let stages = Grid_sim.stages_of_model grid small_dnn in
  let trace = Grid_sim.run stages ~n_packets:100 in
  let first = Grid_sim.packet_latency trace 0 in
  Alcotest.(check int) "perfect overlap" (first + 99) (Grid_sim.total_cycles trace)

let test_grid_sim_ii_gt_one_slows_departures () =
  let stages =
    [
      { Grid_sim.label = "a"; latency_cycles = 4; ii_cycles = 3 };
      { Grid_sim.label = "b"; latency_cycles = 5; ii_cycles = 3 };
    ]
  in
  let trace = Grid_sim.run stages ~n_packets:50 in
  Alcotest.(check (float 0.01)) "departure gap = II" 3.
    (Grid_sim.steady_state_interval trace)

let test_grid_sim_bottleneck_dominates () =
  let stages =
    [
      { Grid_sim.label = "fast"; latency_cycles = 2; ii_cycles = 1 };
      { Grid_sim.label = "slow"; latency_cycles = 2; ii_cycles = 4 };
      { Grid_sim.label = "fast2"; latency_cycles = 2; ii_cycles = 1 };
    ]
  in
  let trace = Grid_sim.run stages ~n_packets:64 in
  Alcotest.(check (float 0.01)) "bottleneck II wins" 4.
    (Grid_sim.steady_state_interval trace)

let test_grid_sim_occupancy () =
  let stages = Grid_sim.stages_of_model grid small_dnn in
  let trace = Grid_sim.run stages ~n_packets:200 in
  let occ = Grid_sim.stage_occupancy trace in
  Alcotest.(check int) "one entry per stage" 3 (List.length occ);
  List.iter
    (fun (label, o) ->
      Alcotest.(check bool) (label ^ " occupancy sane") true (o > 0. && o <= 1.))
    occ

let test_grid_sim_latency_constant_at_ii1 () =
  let stages = Grid_sim.stages_of_model grid small_dnn in
  let trace = Grid_sim.run stages ~n_packets:50 in
  let first = Grid_sim.packet_latency trace 0 in
  Alcotest.(check int) "no queueing at capacity" first
    (Grid_sim.packet_latency trace 49)

let test_grid_sim_validates () =
  Alcotest.check_raises "no stages" (Invalid_argument "Grid_sim.run: no stages")
    (fun () -> ignore (Grid_sim.run [] ~n_packets:1));
  Alcotest.check_raises "bad stage"
    (Invalid_argument "Grid_sim.run: non-positive stage parameters") (fun () ->
      ignore
        (Grid_sim.run
           [ { Grid_sim.label = "x"; latency_cycles = 0; ii_cycles = 1 } ]
           ~n_packets:1))

let suite =
  [
    Alcotest.test_case "flow capacity 5x claim" `Quick test_capacity_formula;
    Alcotest.test_case "flow create validates" `Quick test_create_validates;
    Alcotest.test_case "flow record/read" `Quick test_record_and_read;
    Alcotest.test_case "flow bad bin" `Quick test_record_validates_bin;
    Alcotest.test_case "flow eviction" `Quick test_eviction_on_collision;
    Alcotest.test_case "flow stress" `Quick test_stress_underload_vs_overload;
    Alcotest.test_case "grid sim = analytical" `Quick test_grid_sim_agrees_with_analytical;
    Alcotest.test_case "grid sim overlap" `Quick test_grid_sim_pipelining_overlaps;
    Alcotest.test_case "grid sim II" `Quick test_grid_sim_ii_gt_one_slows_departures;
    Alcotest.test_case "grid sim bottleneck" `Quick test_grid_sim_bottleneck_dominates;
    Alcotest.test_case "grid sim occupancy" `Quick test_grid_sim_occupancy;
    Alcotest.test_case "grid sim flat latency" `Quick test_grid_sim_latency_constant_at_ii1;
    Alcotest.test_case "grid sim validates" `Quick test_grid_sim_validates;
  ]
