(* Range-to-ternary expansion, stage allocation, and grid placement. *)
open Homunculus_backends

(* Range_match *)

let covers ~width ~lo ~hi rows =
  (* Every key in [lo,hi] matches exactly one row; keys outside match none. *)
  let limit = 1 lsl width in
  let ok = ref true in
  for key = 0 to limit - 1 do
    let hits = List.length (List.filter (fun r -> Range_match.matches r key) rows) in
    let expected = if key >= lo && key <= hi then 1 else 0 in
    if hits <> expected then ok := false
  done;
  !ok

let test_expand_full_range () =
  let rows = Range_match.expand_range ~width:8 ~lo:0 ~hi:255 in
  Alcotest.(check int) "one row" 1 (List.length rows);
  Alcotest.(check string) "all wildcards" "********"
    (Range_match.to_string ~width:8 (List.hd rows))

let test_expand_single_value () =
  let rows = Range_match.expand_range ~width:8 ~lo:77 ~hi:77 in
  Alcotest.(check int) "one row" 1 (List.length rows);
  Alcotest.(check string) "exact" "01001101"
    (Range_match.to_string ~width:8 (List.hd rows))

let test_expand_classic_worst_case () =
  (* [1, 2^w - 2] is the classic worst case: exactly 2w - 2 rows. *)
  let rows = Range_match.expand_range ~width:8 ~lo:1 ~hi:254 in
  Alcotest.(check int) "2w-2 rows" 14 (List.length rows);
  Alcotest.(check bool) "exact cover" true (covers ~width:8 ~lo:1 ~hi:254 rows)

let test_expand_covers_exactly () =
  List.iter
    (fun (lo, hi) ->
      let rows = Range_match.expand_range ~width:8 ~lo ~hi in
      Alcotest.(check bool)
        (Printf.sprintf "[%d,%d]" lo hi)
        true
        (covers ~width:8 ~lo ~hi rows))
    [ (0, 0); (3, 17); (100, 101); (128, 255); (64, 191); (255, 255) ]

let test_expand_count_agrees () =
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check int) "count = length"
        (List.length (Range_match.expand_range ~width:10 ~lo ~hi))
        (Range_match.entry_count ~width:10 ~lo ~hi))
    [ (0, 1023); (1, 1022); (17, 900); (512, 513) ]

let test_expand_validates () =
  Alcotest.check_raises "hi too large"
    (Invalid_argument "Range_match: range outside the key space") (fun () ->
      ignore (Range_match.expand_range ~width:4 ~lo:0 ~hi:16));
  Alcotest.check_raises "width"
    (Invalid_argument "Range_match: width outside [1, 30]") (fun () ->
      ignore (Range_match.expand_range ~width:0 ~lo:0 ~hi:0))

let test_worst_case_bound () =
  for width = 2 to 12 do
    let lo = 1 and hi = (1 lsl width) - 2 in
    Alcotest.(check bool) "within bound" true
      (Range_match.entry_count ~width ~lo ~hi <= Range_match.worst_case ~width)
  done

let prop_expansion_covers =
  QCheck.Test.make ~name:"expansion covers exactly" ~count:200
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) ->
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      covers ~width:8 ~lo ~hi (Range_match.expand_range ~width:8 ~lo ~hi))

(* Stage_alloc *)

let test_alloc_independent_pack () =
  match
    Stage_alloc.allocate ~n_stages:12 ~tables_per_stage:4
      (Stage_alloc.independent [ "a"; "b"; "c"; "d"; "e" ])
  with
  | Ok a ->
      Alcotest.(check int) "two stages" 2 a.Stage_alloc.stages_used;
      Alcotest.(check (array int)) "4 + 1" [| 4; 1 |] a.Stage_alloc.occupancy
  | Error e -> Alcotest.fail (Stage_alloc.error_to_string e)

let test_alloc_chain_serializes () =
  match
    Stage_alloc.allocate ~n_stages:12 ~tables_per_stage:4
      (Stage_alloc.chain [ "l0"; "l1"; "l2" ])
  with
  | Ok a ->
      Alcotest.(check int) "three stages" 3 a.Stage_alloc.stages_used;
      Alcotest.(check (option int)) "l2 last" (Some 2)
        (List.assoc_opt "l2" a.Stage_alloc.stage_of)
  | Error e -> Alcotest.fail (Stage_alloc.error_to_string e)

let test_alloc_respects_dependencies () =
  let tables =
    [
      { Stage_alloc.name = "f0"; depends_on = [] };
      { Stage_alloc.name = "f1"; depends_on = [] };
      { Stage_alloc.name = "decision"; depends_on = [ "f0"; "f1" ] };
    ]
  in
  match Stage_alloc.allocate ~n_stages:12 ~tables_per_stage:4 tables with
  | Ok a ->
      let stage n = List.assoc n a.Stage_alloc.stage_of in
      Alcotest.(check bool) "decision after votes" true
        (stage "decision" > stage "f0" && stage "decision" > stage "f1")
  | Error e -> Alcotest.fail (Stage_alloc.error_to_string e)

let test_alloc_capacity_error () =
  match
    Stage_alloc.allocate ~n_stages:2 ~tables_per_stage:1
      (Stage_alloc.chain [ "a"; "b"; "c" ])
  with
  | Error (Stage_alloc.Capacity_exceeded { needed_stages; available }) ->
      Alcotest.(check int) "needs 3" 3 needed_stages;
      Alcotest.(check int) "has 2" 2 available
  | Ok _ | Error _ -> Alcotest.fail "expected capacity error"

let test_alloc_cycle_detected () =
  let tables =
    [
      { Stage_alloc.name = "a"; depends_on = [ "b" ] };
      { Stage_alloc.name = "b"; depends_on = [ "a" ] };
    ]
  in
  match Stage_alloc.allocate ~n_stages:4 ~tables_per_stage:4 tables with
  | Error (Stage_alloc.Cycle _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected cycle error"

let test_alloc_unknown_dependency () =
  let tables = [ { Stage_alloc.name = "a"; depends_on = [ "ghost" ] } ] in
  match Stage_alloc.allocate ~n_stages:4 ~tables_per_stage:4 tables with
  | Error (Stage_alloc.Unknown_dependency { dependency; _ }) ->
      Alcotest.(check string) "names ghost" "ghost" dependency
  | Ok _ | Error _ -> Alcotest.fail "expected unknown-dependency error"

let test_critical_path () =
  Alcotest.(check int) "chain" 4 (Stage_alloc.critical_path (Stage_alloc.chain [ "a"; "b"; "c"; "d" ]));
  Alcotest.(check int) "flat" 1 (Stage_alloc.critical_path (Stage_alloc.independent [ "a"; "b" ]));
  Alcotest.(check int) "empty" 0 (Stage_alloc.critical_path [])

let test_iisy_table_graph_svm () =
  let svm =
    Model_ir.Svm
      { name = "s"; class_weights = Array.make_matrix 2 3 1.; biases = [| 0.; 0. |] }
  in
  let graph = Iisy.table_graph svm in
  Alcotest.(check int) "3 votes + decision" 4 (List.length graph);
  Alcotest.(check int) "critical path 2" 2 (Stage_alloc.critical_path graph)

let test_iisy_table_graph_dnn_layers_chain () =
  let layer n_in n_out =
    {
      Model_ir.n_in;
      n_out;
      activation = "relu";
      weights = Array.make_matrix n_out n_in 0.1;
      biases = Array.make n_out 0.;
    }
  in
  let dnn = Model_ir.Dnn { name = "d"; layers = [| layer 4 4; layer 4 2 |] } in
  let graph = Iisy.table_graph dnn in
  let mapping = Iisy.map_model dnn in
  Alcotest.(check int) "graph matches mapping size" (Iisy.n_tables mapping)
    (List.length graph);
  Alcotest.(check int) "two layers -> path 2" 2 (Stage_alloc.critical_path graph)

let test_tofino_stage_allocation_in_estimate () =
  (* A deep tree needs one stage per level; estimate must reflect that. *)
  let rec deep_tree depth =
    if depth = 0 then
      Homunculus_ml.Decision_tree.Leaf { distribution = [| 1.; 0. |] }
    else
      Homunculus_ml.Decision_tree.Split
        {
          feature = 0;
          threshold = float_of_int depth;
          left = deep_tree (depth - 1);
          right = Homunculus_ml.Decision_tree.Leaf { distribution = [| 0.; 1. |] };
        }
  in
  let model =
    Model_ir.Tree { name = "t"; root = deep_tree 9; n_features = 2; n_classes = 2 }
  in
  let v = Tofino.estimate_model Tofino.default_device Resource.line_rate model in
  match Resource.find_usage v "stages" with
  | Some u ->
      (* 9 level tables + leaves, chained: 10 stages. *)
      Alcotest.(check (float 0.)) "chained stages" 10. u.Resource.used
  | None -> Alcotest.fail "stages usage missing"

(* Placement *)

let grid = Taurus.default_grid

let test_checkerboard () =
  Alcotest.(check bool) "origin CU" true (Placement.tile_kind_at ~row:0 ~col:0 = Placement.Cu);
  Alcotest.(check bool) "neighbor MU" true (Placement.tile_kind_at ~row:0 ~col:1 = Placement.Mu)

let test_place_respects_demands () =
  match Placement.place grid [ ("a", 10, 4); ("b", 6, 8) ] with
  | Ok p ->
      let count kind tiles =
        List.length (List.filter (fun t -> t.Placement.kind = kind) tiles)
      in
      let a = List.assoc "a" p.Placement.assignments in
      let b = List.assoc "b" p.Placement.assignments in
      Alcotest.(check int) "a CUs" 10 (count Placement.Cu a);
      Alcotest.(check int) "a MUs" 4 (count Placement.Mu a);
      Alcotest.(check int) "b CUs" 6 (count Placement.Cu b);
      Alcotest.(check int) "b MUs" 8 (count Placement.Mu b)
  | Error e -> Alcotest.fail e

let test_place_no_overlap () =
  match Placement.place grid [ ("a", 20, 20); ("b", 20, 20); ("c", 10, 10) ] with
  | Ok p ->
      let all =
        List.concat_map (fun (_, tiles) -> tiles) p.Placement.assignments
        |> List.map (fun t -> (t.Placement.row, t.Placement.col))
      in
      Alcotest.(check int) "no tile reused"
        (List.length all)
        (List.length (List.sort_uniq compare all))
  | Error e -> Alcotest.fail e

let test_place_out_of_resources () =
  match Placement.place grid [ ("huge", 200, 0) ] with
  | Error msg -> Alcotest.(check bool) "names CU" true
                   (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected failure (only 128 CUs exist)"

let test_place_model_and_render () =
  let layer n_in n_out =
    {
      Model_ir.n_in;
      n_out;
      activation = "relu";
      weights = Array.make_matrix n_out n_in 0.1;
      biases = Array.make n_out 0.;
    }
  in
  let model = Model_ir.Dnn { name = "m"; layers = [| layer 7 12; layer 12 2 |] } in
  match Placement.place_model grid model with
  | Ok p ->
      Alcotest.(check int) "one region per layer" 2
        (List.length p.Placement.assignments);
      Alcotest.(check bool) "some utilization" true (Placement.utilization p > 0.);
      Alcotest.(check bool) "utilization bounded" true (Placement.utilization p <= 1.);
      let art = Placement.render p in
      Alcotest.(check int) "16 rows of 17 chars" (16 * 17) (String.length art);
      Alcotest.(check bool) "stage 0 visible" true (String.contains art '0');
      Alcotest.(check bool) "stage 1 visible" true (String.contains art '1')
  | Error e -> Alcotest.fail e

let test_place_adjacent_stages_wirelength () =
  match Placement.place grid [ ("a", 8, 8); ("b", 8, 8); ("c", 8, 8) ] with
  | Ok p ->
      (* Column-sweep packing keeps consecutive stages within a few columns
         of each other. *)
      Alcotest.(check bool) "short wires" true (Placement.wirelength p < 16.)
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "range full" `Quick test_expand_full_range;
    Alcotest.test_case "range single" `Quick test_expand_single_value;
    Alcotest.test_case "range worst case" `Quick test_expand_classic_worst_case;
    Alcotest.test_case "range covers" `Quick test_expand_covers_exactly;
    Alcotest.test_case "range count" `Quick test_expand_count_agrees;
    Alcotest.test_case "range validates" `Quick test_expand_validates;
    Alcotest.test_case "range bound" `Quick test_worst_case_bound;
    QCheck_alcotest.to_alcotest prop_expansion_covers;
    Alcotest.test_case "alloc independent" `Quick test_alloc_independent_pack;
    Alcotest.test_case "alloc chain" `Quick test_alloc_chain_serializes;
    Alcotest.test_case "alloc dependencies" `Quick test_alloc_respects_dependencies;
    Alcotest.test_case "alloc capacity" `Quick test_alloc_capacity_error;
    Alcotest.test_case "alloc cycle" `Quick test_alloc_cycle_detected;
    Alcotest.test_case "alloc unknown dep" `Quick test_alloc_unknown_dependency;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "iisy graph svm" `Quick test_iisy_table_graph_svm;
    Alcotest.test_case "iisy graph dnn" `Quick test_iisy_table_graph_dnn_layers_chain;
    Alcotest.test_case "tofino stage alloc" `Quick test_tofino_stage_allocation_in_estimate;
    Alcotest.test_case "checkerboard" `Quick test_checkerboard;
    Alcotest.test_case "place demands" `Quick test_place_respects_demands;
    Alcotest.test_case "place no overlap" `Quick test_place_no_overlap;
    Alcotest.test_case "place overflow" `Quick test_place_out_of_resources;
    Alcotest.test_case "place model + render" `Quick test_place_model_and_render;
    Alcotest.test_case "place wirelength" `Quick test_place_adjacent_stages_wirelength;
  ]
