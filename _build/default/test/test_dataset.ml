open Homunculus_ml
module Rng = Homunculus_util.Rng

let mk ?names ?(n_classes = 2) xs ys =
  Dataset.create ?feature_names:names ~x:xs ~y:ys ~n_classes ()

let sample =
  mk
    [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |]; [| 7.; 8. |] |]
    [| 0; 1; 0; 1 |]

let test_create_defaults () =
  Alcotest.(check (array string)) "default names" [| "f0"; "f1" |]
    sample.Dataset.feature_names;
  Alcotest.(check int) "n_samples" 4 (Dataset.n_samples sample);
  Alcotest.(check int) "n_features" 2 (Dataset.n_features sample)

let test_create_rejects_bad_label () =
  Alcotest.check_raises "label out of range"
    (Invalid_argument "Dataset.create: label out of range") (fun () ->
      ignore (mk [| [| 1. |] |] [| 2 |]))

let test_create_rejects_ragged () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Dataset.create: ragged features") (fun () ->
      ignore (mk [| [| 1. |]; [| 1.; 2. |] |] [| 0; 1 |]))

let test_create_rejects_length_mismatch () =
  Alcotest.check_raises "|x| <> |y|" (Invalid_argument "Dataset.create: |x| <> |y|")
    (fun () -> ignore (mk [| [| 1. |] |] [| 0; 1 |]))

let test_shuffle_preserves_pairs () =
  let rng = Rng.create 1 in
  let s = Dataset.shuffle rng sample in
  Alcotest.(check int) "same size" 4 (Dataset.n_samples s);
  (* Every (x, y) pair of the shuffle appears in the original. *)
  Array.iteri
    (fun i row ->
      let found = ref false in
      Array.iteri
        (fun j orig -> if orig = row && sample.Dataset.y.(j) = s.Dataset.y.(i) then found := true)
        sample.Dataset.x;
      Alcotest.(check bool) "pair preserved" true !found)
    s.Dataset.x

let test_split_sizes () =
  let rng = Rng.create 2 in
  let big =
    mk
      (Array.init 100 (fun i -> [| float_of_int i |]))
      (Array.init 100 (fun i -> i mod 2))
  in
  let train, test = Dataset.split rng ~train_frac:0.8 big in
  Alcotest.(check int) "train 80" 80 (Dataset.n_samples train);
  Alcotest.(check int) "test 20" 20 (Dataset.n_samples test)

let test_split_disjoint_union () =
  let rng = Rng.create 3 in
  let big =
    mk (Array.init 50 (fun i -> [| float_of_int i |])) (Array.make 50 0) ~n_classes:1
  in
  let train, test = Dataset.split rng ~train_frac:0.6 big in
  let all =
    Array.append
      (Array.map (fun r -> r.(0)) train.Dataset.x)
      (Array.map (fun r -> r.(0)) test.Dataset.x)
  in
  Array.sort compare all;
  Alcotest.(check (array (float 0.))) "partition"
    (Array.init 50 float_of_int) all

let test_split_rejects_bad_frac () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "frac 1"
    (Invalid_argument "Dataset.split: train_frac outside (0, 1)") (fun () ->
      ignore (Dataset.split rng ~train_frac:1. sample))

let test_subset () =
  let s = Dataset.subset sample [| 2; 0 |] in
  Alcotest.(check (array (float 0.))) "row order" [| 5.; 6. |] s.Dataset.x.(0);
  Alcotest.(check int) "label order" 0 s.Dataset.y.(1)

let test_class_counts () =
  Alcotest.(check (array int)) "counts" [| 2; 2 |] (Dataset.class_counts sample)

let test_select_features () =
  let named =
    Dataset.create
      ~feature_names:[| "a"; "b"; "c" |]
      ~x:[| [| 1.; 2.; 3. |] |]
      ~y:[| 0 |] ~n_classes:1 ()
  in
  let s = Dataset.select_features named [| 2; 0 |] in
  Alcotest.(check (array string)) "names" [| "c"; "a" |] s.Dataset.feature_names;
  Alcotest.(check (array (float 0.))) "values" [| 3.; 1. |] s.Dataset.x.(0)

let test_select_features_range () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Dataset.select_features: column out of range") (fun () ->
      ignore (Dataset.select_features sample [| 5 |]))

let test_feature_index () =
  Alcotest.(check (option int)) "found" (Some 1) (Dataset.feature_index sample "f1");
  Alcotest.(check (option int)) "missing" None (Dataset.feature_index sample "zz")

let test_concat_samples () =
  let c = Dataset.concat_samples sample sample in
  Alcotest.(check int) "doubled" 8 (Dataset.n_samples c)

let test_concat_rejects_schema () =
  let other =
    Dataset.create ~feature_names:[| "x"; "y" |]
      ~x:[| [| 0.; 0. |] |] ~y:[| 0 |] ~n_classes:2 ()
  in
  Alcotest.check_raises "schema"
    (Invalid_argument "Dataset.concat_samples: feature schema mismatch")
    (fun () -> ignore (Dataset.concat_samples sample other))

let test_one_hot () =
  Alcotest.(check (array (float 0.))) "one hot" [| 0.; 1.; 0. |]
    (Dataset.one_hot ~n_classes:3 1)

(* Scaler *)

let test_scaler_standardizes () =
  let x = [| [| 1.; 10. |]; [| 3.; 30. |]; [| 5.; 50. |] |] in
  let s = Scaler.fit x in
  let t = Scaler.transform s x in
  let col j = Array.map (fun r -> r.(j)) t in
  Alcotest.(check (float 1e-9)) "mean 0 col0" 0. (Homunculus_util.Stats.mean (col 0));
  Alcotest.(check (float 1e-9)) "std 1 col1" 1. (Homunculus_util.Stats.std (col 1))

let test_scaler_constant_column () =
  let x = [| [| 5. |]; [| 5. |] |] in
  let s = Scaler.fit x in
  Alcotest.(check (array (float 1e-9))) "shift only" [| 0. |]
    (Scaler.transform_row s [| 5. |])

let test_scaler_roundtrip () =
  let x = [| [| 1.; 2. |]; [| 3.; 8. |]; [| -1.; 0. |] |] in
  let s = Scaler.fit x in
  let row = [| 2.5; 4. |] in
  Alcotest.(check (array (float 1e-9))) "inverse" row
    (Scaler.inverse_transform_row s (Scaler.transform_row s row))

let test_scaler_dataset () =
  let _, scaled = Scaler.fit_dataset sample in
  Alcotest.(check int) "same shape" 4 (Dataset.n_samples scaled);
  Alcotest.(check (array int)) "labels intact" sample.Dataset.y scaled.Dataset.y

let suite =
  [
    Alcotest.test_case "create defaults" `Quick test_create_defaults;
    Alcotest.test_case "rejects bad label" `Quick test_create_rejects_bad_label;
    Alcotest.test_case "rejects ragged" `Quick test_create_rejects_ragged;
    Alcotest.test_case "rejects length mismatch" `Quick test_create_rejects_length_mismatch;
    Alcotest.test_case "shuffle preserves pairs" `Quick test_shuffle_preserves_pairs;
    Alcotest.test_case "split sizes" `Quick test_split_sizes;
    Alcotest.test_case "split partitions" `Quick test_split_disjoint_union;
    Alcotest.test_case "split rejects bad frac" `Quick test_split_rejects_bad_frac;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "class counts" `Quick test_class_counts;
    Alcotest.test_case "select features" `Quick test_select_features;
    Alcotest.test_case "select features range" `Quick test_select_features_range;
    Alcotest.test_case "feature index" `Quick test_feature_index;
    Alcotest.test_case "concat samples" `Quick test_concat_samples;
    Alcotest.test_case "concat rejects schema" `Quick test_concat_rejects_schema;
    Alcotest.test_case "one hot" `Quick test_one_hot;
    Alcotest.test_case "scaler standardizes" `Quick test_scaler_standardizes;
    Alcotest.test_case "scaler constant column" `Quick test_scaler_constant_column;
    Alcotest.test_case "scaler roundtrip" `Quick test_scaler_roundtrip;
    Alcotest.test_case "scaler dataset" `Quick test_scaler_dataset;
  ]
