test/test_spatial_ir.ml: Alcotest Array Format Homunculus_backends Homunculus_ml List Model_ir Spatial Spatial_ir String
