test/test_metrics.ml: Alcotest Array Float Gen Homunculus_ml Metrics QCheck QCheck_alcotest
