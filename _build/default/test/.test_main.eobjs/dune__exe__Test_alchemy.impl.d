test/test_alchemy.ml: Alcotest Array Homunculus_alchemy Homunculus_backends Homunculus_ml Homunculus_util Iomap List Model_ir Model_spec Platform Resource Schedule
