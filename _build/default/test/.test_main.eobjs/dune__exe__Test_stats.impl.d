test/test_stats.ml: Alcotest Array Float Gen Homunculus_util QCheck QCheck_alcotest Stats
