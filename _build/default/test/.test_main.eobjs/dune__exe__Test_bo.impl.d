test/test_bo.ml: Alcotest Array Float Homunculus_bo Homunculus_util List Stdlib
