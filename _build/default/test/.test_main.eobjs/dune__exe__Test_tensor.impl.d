test/test_tensor.ml: Alcotest Array Float Homunculus_tensor Mat QCheck QCheck_alcotest Vec
