test/test_artifacts.ml: Alcotest Array Botnet Filename Float Flow Flowsim Fun Homunculus_backends Homunculus_bo Homunculus_netdata Homunculus_util Model_ir String Sys Trace Verilog
