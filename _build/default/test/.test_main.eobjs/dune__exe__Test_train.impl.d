test/test_train.ml: Alcotest Array Dataset Float Homunculus_ml Homunculus_util Mlp Optimizer Train
