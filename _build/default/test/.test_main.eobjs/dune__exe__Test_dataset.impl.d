test/test_dataset.ml: Alcotest Array Dataset Homunculus_ml Homunculus_util Scaler
