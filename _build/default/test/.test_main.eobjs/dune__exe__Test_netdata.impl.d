test/test_netdata.ml: Alcotest Array Botnet Flow Flowsim Histogram Homunculus_ml Homunculus_netdata Homunculus_util Iot List Nslkdd Packet
