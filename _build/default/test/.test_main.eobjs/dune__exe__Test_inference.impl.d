test/test_inference.ml: Alcotest Array Fun Homunculus_backends Homunculus_ml Homunculus_util Inference Model_ir Pipeline_sim Taurus
