test/test_rng.ml: Alcotest Array Float Fun Hashtbl Homunculus_util Option Rng Stats
