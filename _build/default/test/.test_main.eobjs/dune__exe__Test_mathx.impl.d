test/test_mathx.ml: Alcotest Array Float Gen Homunculus_util Mathx QCheck QCheck_alcotest
