test/test_mapping.ml: Alcotest Array Homunculus_backends Homunculus_ml Iisy List Model_ir Placement Printf QCheck QCheck_alcotest Range_match Resource Stage_alloc Stdlib String Taurus Tofino
