test/test_simulation.ml: Alcotest Array Flow_table Grid_sim Homunculus_backends Homunculus_netdata List Model_ir Taurus
