test/test_p4_ir.ml: Alcotest Array Homunculus_backends Homunculus_ml List Model_ir P4_ir P4gen String
