test/test_classical.ml: Alcotest Array Dataset Decision_tree Float Homunculus_ml Homunculus_util Kmeans Metrics Random_forest Svm
