test/test_io_binding.ml: Alcotest Dataset Dataset_io Feature_binding Filename Fun Homunculus_backends Homunculus_ml Homunculus_netdata Homunculus_util List String Sys
