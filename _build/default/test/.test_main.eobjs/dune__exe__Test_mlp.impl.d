test/test_mlp.ml: Activation Alcotest Array Homunculus_ml Homunculus_util List Loss Mlp Printf
