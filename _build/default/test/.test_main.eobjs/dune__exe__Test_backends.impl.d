test/test_backends.ml: Alcotest Array Fpga Homunculus_backends Homunculus_ml Homunculus_util Iisy List Model_ir P4gen Resource Spatial String Taurus Tofino
