test/test_json.ml: Alcotest Float Homunculus_bo Homunculus_util Json List QCheck QCheck_alcotest String
