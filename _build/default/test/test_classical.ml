(* KMeans, SVM, decision trees, random forests. *)
open Homunculus_ml
module Rng = Homunculus_util.Rng

let two_blobs rng n ~sep =
  Array.init (2 * n) (fun i ->
      let mu = if i < n then -.sep else sep in
      [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])

(* KMeans *)

let test_kmeans_recovers_blobs () =
  let rng = Rng.create 1 in
  let x = two_blobs rng 100 ~sep:6. in
  let km = Kmeans.fit rng ~k:2 x in
  let c = Kmeans.centroids km in
  let near v = Float.abs (Float.abs v -. 6.) < 1.0 in
  Alcotest.(check bool) "centroids near blob centers" true
    (near c.(0).(0) && near c.(1).(0))

let test_kmeans_separates_assignments () =
  let rng = Rng.create 2 in
  let x = two_blobs rng 80 ~sep:6. in
  let km = Kmeans.fit rng ~k:2 x in
  let pred = Kmeans.predict_all km x in
  let truth = Array.init 160 (fun i -> if i < 80 then 0 else 1) in
  Alcotest.(check bool) "v-measure ~ 1" true
    (Metrics.v_measure ~pred ~truth () > 0.9)

let test_kmeans_inertia_decreases_with_k () =
  let rng = Rng.create 3 in
  let x = two_blobs rng 60 ~sep:4. in
  let i2 = Kmeans.inertia (Kmeans.fit rng ~k:2 x) in
  let i6 = Kmeans.inertia (Kmeans.fit rng ~k:6 x) in
  Alcotest.(check bool) "more clusters, less inertia" true (i6 < i2)

let test_kmeans_rejects_bad_k () =
  let rng = Rng.create 4 in
  Alcotest.check_raises "k=0" (Invalid_argument "Kmeans.fit: k <= 0") (fun () ->
      ignore (Kmeans.fit rng ~k:0 [| [| 1. |] |]));
  Alcotest.check_raises "too few samples"
    (Invalid_argument "Kmeans.fit: fewer samples than clusters") (fun () ->
      ignore (Kmeans.fit rng ~k:3 [| [| 1. |]; [| 2. |] |]))

let test_kmeans_predict_nearest () =
  let rng = Rng.create 5 in
  let x = [| [| 0. |]; [| 0.1 |]; [| 10. |]; [| 10.1 |] |] in
  let km = Kmeans.fit rng ~k:2 x in
  Alcotest.(check bool) "0 and 10 in different clusters" true
    (Kmeans.predict km [| 0. |] <> Kmeans.predict km [| 10. |]);
  Alcotest.(check int) "0 and 0.2 together"
    (Kmeans.predict km [| 0. |])
    (Kmeans.predict km [| 0.2 |])

let test_kmeans_merge_clusters () =
  let rng = Rng.create 6 in
  let x =
    Array.concat
      [
        two_blobs rng 30 ~sep:8.;
        Array.init 30 (fun _ -> [| Rng.gaussian rng ~mu:20. (); 0. |]);
      ]
  in
  let km = Kmeans.fit rng ~k:4 x in
  let merged = Kmeans.merge_clusters km ~into:2 in
  Alcotest.(check int) "two clusters" 2 (Kmeans.k merged);
  Alcotest.check_raises "bad target"
    (Invalid_argument "Kmeans.merge_clusters: bad target") (fun () ->
      ignore (Kmeans.merge_clusters km ~into:0))

let test_kmeans_merge_preserves_dim () =
  let rng = Rng.create 7 in
  let x = two_blobs rng 40 ~sep:5. in
  let km = Kmeans.fit rng ~k:4 x in
  let merged = Kmeans.merge_clusters km ~into:3 in
  Array.iter
    (fun c -> Alcotest.(check int) "dim 2" 2 (Array.length c))
    (Kmeans.centroids merged)

(* SVM *)

let test_svm_binary_separable () =
  let rng = Rng.create 8 in
  let x = two_blobs rng 100 ~sep:4. in
  let y = Array.init 200 (fun i -> if i < 100 then 0 else 1) in
  let m = Svm.fit_binary rng ~x ~y () in
  let pred = Array.map (Svm.predict_binary m) x in
  Alcotest.(check bool) "f1 > 0.95" true (Metrics.f1 ~pred ~truth:y () > 0.95)

let test_svm_margin_sign () =
  let rng = Rng.create 9 in
  let x = two_blobs rng 100 ~sep:4. in
  let y = Array.init 200 (fun i -> if i < 100 then 0 else 1) in
  let m = Svm.fit_binary rng ~x ~y () in
  Alcotest.(check bool) "positive side" true (Svm.decision m [| 8.; 8. |] > 0.);
  Alcotest.(check bool) "negative side" true (Svm.decision m [| -8.; -8. |] < 0.)

let test_svm_multiclass () =
  let rng = Rng.create 10 in
  let n = 60 in
  let x =
    Array.init (3 * n) (fun i ->
        let c = i / n in
        let mu = 6. *. float_of_int c in
        [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])
  in
  let y = Array.init (3 * n) (fun i -> i / n) in
  let d = Dataset.create ~x ~y ~n_classes:3 () in
  let m = Svm.fit rng d in
  let pred = Svm.predict_all m x in
  Alcotest.(check bool) "accuracy > 0.9" true (Metrics.accuracy ~pred ~truth:y > 0.9);
  Alcotest.(check int) "3 classes" 3 (Svm.n_classes m);
  Alcotest.(check int) "2 features" 2 (Svm.n_features m);
  Alcotest.(check int) "weights shape" 3 (Array.length (Svm.class_weights m));
  Alcotest.(check int) "biases shape" 3 (Array.length (Svm.class_biases m))

let test_svm_rejects_empty () =
  let rng = Rng.create 11 in
  Alcotest.check_raises "empty" (Invalid_argument "Svm.fit_binary: empty input")
    (fun () -> ignore (Svm.fit_binary rng ~x:[||] ~y:[||] ()))

(* Decision trees *)

let xor_data rng n =
  let x =
    Array.init n (fun _ ->
        [| Rng.uniform rng (-1.) 1.; Rng.uniform rng (-1.) 1. |])
  in
  let y = Array.map (fun r -> if r.(0) *. r.(1) > 0. then 1 else 0) x in
  (x, y)

let test_tree_learns_xor () =
  (* XOR defeats linear models; a depth-2+ tree nails it. *)
  let rng = Rng.create 12 in
  let x, y = xor_data rng 400 in
  let t = Decision_tree.Classifier.fit ~x ~y ~n_classes:2 () in
  let pred = Decision_tree.Classifier.predict_all t x in
  Alcotest.(check bool) "accuracy > 0.95" true
    (Metrics.accuracy ~pred ~truth:y > 0.95)

let test_tree_max_depth_respected () =
  let rng = Rng.create 13 in
  let x, y = xor_data rng 200 in
  let params = { Decision_tree.default_params with Decision_tree.max_depth = 3 } in
  let t = Decision_tree.Classifier.fit ~params ~x ~y ~n_classes:2 () in
  Alcotest.(check bool) "depth <= 3" true
    (Decision_tree.depth (Decision_tree.Classifier.root t) <= 3)

let test_tree_pure_leaf_shortcut () =
  let x = [| [| 0. |]; [| 1. |]; [| 2. |] |] in
  let y = [| 1; 1; 1 |] in
  let t = Decision_tree.Classifier.fit ~x ~y ~n_classes:2 () in
  Alcotest.(check int) "single leaf" 1
    (Decision_tree.n_leaves (Decision_tree.Classifier.root t))

let test_tree_proba_sums_to_one () =
  let rng = Rng.create 14 in
  let x, y = xor_data rng 100 in
  let t = Decision_tree.Classifier.fit ~x ~y ~n_classes:2 () in
  let p = Decision_tree.Classifier.predict_proba t [| 0.3; 0.3 |] in
  Alcotest.(check (float 1e-9)) "distribution" 1. (p.(0) +. p.(1))

let test_tree_node_counts () =
  let root =
    Decision_tree.Split
      {
        feature = 0;
        threshold = 0.;
        left = Decision_tree.Leaf { distribution = [| 1.; 0. |] };
        right =
          Decision_tree.Split
            {
              feature = 1;
              threshold = 1.;
              left = Decision_tree.Leaf { distribution = [| 0.; 1. |] };
              right = Decision_tree.Leaf { distribution = [| 0.; 1. |] };
            };
      }
  in
  Alcotest.(check int) "depth" 2 (Decision_tree.depth root);
  Alcotest.(check int) "leaves" 3 (Decision_tree.n_leaves root);
  Alcotest.(check int) "nodes" 5 (Decision_tree.n_nodes root)

let test_tree_regressor_fits_step () =
  let x = Array.init 100 (fun i -> [| float_of_int i |]) in
  let y = Array.init 100 (fun i -> if i < 50 then 1. else 5. ) in
  let t = Decision_tree.Regressor.fit ~x ~y () in
  Alcotest.(check (float 0.2)) "left" 1. (Decision_tree.Regressor.predict t [| 10. |]);
  Alcotest.(check (float 0.2)) "right" 5. (Decision_tree.Regressor.predict t [| 90. |])

let test_tree_min_samples_leaf () =
  let rng = Rng.create 15 in
  let x, y = xor_data rng 64 in
  let params =
    { Decision_tree.default_params with Decision_tree.min_samples_leaf = 16 }
  in
  let t = Decision_tree.Classifier.fit ~params ~x ~y ~n_classes:2 () in
  (* 64 samples with min leaf 16 cannot have more than 4 leaves. *)
  Alcotest.(check bool) "few leaves" true
    (Decision_tree.n_leaves (Decision_tree.Classifier.root t) <= 4)

(* Random forest *)

let test_forest_classifier_beats_noise () =
  let rng = Rng.create 16 in
  let x, y = xor_data rng 300 in
  let f = Random_forest.Classifier.fit rng ~n_trees:15 ~x ~y ~n_classes:2 () in
  let pred = Random_forest.Classifier.predict_all f x in
  Alcotest.(check bool) "accuracy > 0.9" true (Metrics.accuracy ~pred ~truth:y > 0.9);
  Alcotest.(check int) "n_trees" 15 (Random_forest.Classifier.n_trees f)

let test_forest_proba_distribution () =
  let rng = Rng.create 17 in
  let x, y = xor_data rng 100 in
  let f = Random_forest.Classifier.fit rng ~n_trees:7 ~x ~y ~n_classes:2 () in
  let p = Random_forest.Classifier.predict_proba f [| 0.5; 0.5 |] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (p.(0) +. p.(1))

let test_forest_regressor_interpolates () =
  let rng = Rng.create 18 in
  let x = Array.init 200 (fun i -> [| float_of_int i /. 20. |]) in
  let y = Array.map (fun r -> sin r.(0)) x in
  let f = Random_forest.Regressor.fit rng ~n_trees:20 ~x ~y () in
  let err = Float.abs (Random_forest.Regressor.predict f [| 3. |] -. sin 3.) in
  Alcotest.(check bool) "close to sin" true (err < 0.2)

let test_forest_regressor_uncertainty () =
  let rng = Rng.create 19 in
  let x = Array.init 100 (fun i -> [| float_of_int i |]) in
  let y = Array.map (fun r -> r.(0)) x in
  let f = Random_forest.Regressor.fit rng ~n_trees:10 ~x ~y () in
  let _, std_in = Random_forest.Regressor.predict_with_std f [| 50. |] in
  let _, std_out = Random_forest.Regressor.predict_with_std f [| 500. |] in
  Alcotest.(check bool) "std non-negative" true (std_in >= 0. && std_out >= 0.)

let test_forest_deterministic_given_seed () =
  let x = Array.init 50 (fun i -> [| float_of_int i |]) in
  let y = Array.init 50 (fun i -> i mod 2) in
  let f1 = Random_forest.Classifier.fit (Rng.create 7) ~n_trees:5 ~x ~y ~n_classes:2 () in
  let f2 = Random_forest.Classifier.fit (Rng.create 7) ~n_trees:5 ~x ~y ~n_classes:2 () in
  let p1 = Array.map (Random_forest.Classifier.predict f1) x in
  let p2 = Array.map (Random_forest.Classifier.predict f2) x in
  Alcotest.(check (array int)) "same predictions" p1 p2

let suite =
  [
    Alcotest.test_case "kmeans recovers blobs" `Quick test_kmeans_recovers_blobs;
    Alcotest.test_case "kmeans separates" `Quick test_kmeans_separates_assignments;
    Alcotest.test_case "kmeans inertia vs k" `Quick test_kmeans_inertia_decreases_with_k;
    Alcotest.test_case "kmeans rejects bad k" `Quick test_kmeans_rejects_bad_k;
    Alcotest.test_case "kmeans predict nearest" `Quick test_kmeans_predict_nearest;
    Alcotest.test_case "kmeans merge clusters" `Quick test_kmeans_merge_clusters;
    Alcotest.test_case "kmeans merge dims" `Quick test_kmeans_merge_preserves_dim;
    Alcotest.test_case "svm binary separable" `Quick test_svm_binary_separable;
    Alcotest.test_case "svm margin sign" `Quick test_svm_margin_sign;
    Alcotest.test_case "svm multiclass" `Quick test_svm_multiclass;
    Alcotest.test_case "svm rejects empty" `Quick test_svm_rejects_empty;
    Alcotest.test_case "tree learns xor" `Quick test_tree_learns_xor;
    Alcotest.test_case "tree max depth" `Quick test_tree_max_depth_respected;
    Alcotest.test_case "tree pure leaf" `Quick test_tree_pure_leaf_shortcut;
    Alcotest.test_case "tree proba sums" `Quick test_tree_proba_sums_to_one;
    Alcotest.test_case "tree node counts" `Quick test_tree_node_counts;
    Alcotest.test_case "tree regressor step" `Quick test_tree_regressor_fits_step;
    Alcotest.test_case "tree min samples leaf" `Quick test_tree_min_samples_leaf;
    Alcotest.test_case "forest classifier" `Quick test_forest_classifier_beats_noise;
    Alcotest.test_case "forest proba" `Quick test_forest_proba_distribution;
    Alcotest.test_case "forest regressor" `Quick test_forest_regressor_interpolates;
    Alcotest.test_case "forest uncertainty" `Quick test_forest_regressor_uncertainty;
    Alcotest.test_case "forest deterministic" `Quick test_forest_deterministic_given_seed;
  ]
