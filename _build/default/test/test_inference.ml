(* The Model_ir reference interpreter and the cycle-level pipeline simulator:
   the interpreter must agree exactly with the trained models the IR was
   extracted from, and the simulator must realize the analytical II model. *)
open Homunculus_backends
module Ml = Homunculus_ml
module Rng = Homunculus_util.Rng

let random_inputs rng n d =
  Array.init n (fun _ -> Array.init d (fun _ -> Rng.uniform rng (-2.) 2.))

let test_dnn_interpreter_matches_mlp () =
  let rng = Rng.create 1 in
  let mlp = Ml.Mlp.create rng ~input_dim:5 ~hidden:[| 7; 4 |] ~output_dim:3 () in
  let ir = Model_ir.of_mlp ~name:"m" mlp in
  let xs = random_inputs rng 200 5 in
  Array.iter
    (fun x ->
      Alcotest.(check int) "same class" (Ml.Mlp.predict mlp x)
        (Inference.predict ir x);
      let logits = Ml.Mlp.logits mlp x in
      let scores = Inference.scores ir x in
      Array.iteri
        (fun i l ->
          Alcotest.(check (float 1e-9)) "same logits" l scores.(i))
        logits)
    xs

let test_dnn_interpreter_tanh_path () =
  let rng = Rng.create 2 in
  let mlp =
    Ml.Mlp.create rng ~input_dim:4 ~hidden:[| 6 |] ~output_dim:2
      ~hidden_act:Ml.Activation.Tanh ()
  in
  let ir = Model_ir.of_mlp ~name:"m" mlp in
  let xs = random_inputs rng 100 4 in
  Array.iter
    (fun x ->
      Alcotest.(check int) "same class" (Ml.Mlp.predict mlp x)
        (Inference.predict ir x))
    xs

let test_kmeans_interpreter_matches () =
  let rng = Rng.create 3 in
  let data = random_inputs rng 150 3 in
  let km = Ml.Kmeans.fit rng ~k:4 data in
  let ir = Model_ir.of_kmeans ~name:"k" km in
  Array.iter
    (fun x ->
      Alcotest.(check int) "same cluster" (Ml.Kmeans.predict km x)
        (Inference.predict ir x))
    data

let test_svm_interpreter_matches () =
  let rng = Rng.create 4 in
  let x = random_inputs rng 120 4 in
  let y = Array.init 120 (fun i -> i mod 3) in
  let d = Ml.Dataset.create ~x ~y ~n_classes:3 () in
  let svm = Ml.Svm.fit rng d in
  let ir = Model_ir.of_svm ~name:"s" svm in
  Array.iter
    (fun sample ->
      Alcotest.(check int) "same class" (Ml.Svm.predict svm sample)
        (Inference.predict ir sample))
    x

let test_tree_interpreter_matches () =
  let rng = Rng.create 5 in
  let x = random_inputs rng 200 3 in
  let y = Array.map (fun r -> if r.(0) *. r.(1) > 0. then 1 else 0) x in
  let tree = Ml.Decision_tree.Classifier.fit ~x ~y ~n_classes:2 () in
  let ir =
    Model_ir.Tree
      {
        name = "t";
        root = Ml.Decision_tree.Classifier.root tree;
        n_features = 3;
        n_classes = 2;
      }
  in
  Array.iter
    (fun sample ->
      Alcotest.(check int) "same class"
        (Ml.Decision_tree.Classifier.predict tree sample)
        (Inference.predict ir sample))
    x

let test_interpreter_rejects_bad_dim () =
  let ir = Model_ir.Kmeans { name = "k"; centroids = [| [| 0.; 0. |] |] } in
  Alcotest.check_raises "dim" (Invalid_argument "Inference: centroid dimension mismatch")
    (fun () -> ignore (Inference.predict ir [| 1. |]))

let test_quantization_close_at_16_bits () =
  let rng = Rng.create 6 in
  let mlp = Ml.Mlp.create rng ~input_dim:5 ~hidden:[| 8 |] ~output_dim:2 () in
  let ir = Model_ir.of_mlp ~name:"m" mlp in
  let q = Inference.quantize_weights ir ~bits:16 in
  let xs = random_inputs rng 300 5 in
  let agree = ref 0 in
  Array.iter
    (fun x -> if Inference.predict ir x = Inference.predict q x then incr agree)
    xs;
  (* FixPt[16] deployment loses almost nothing (paper's Spatial type). *)
  Alcotest.(check bool) "FixPt16 agreement > 99%" true (!agree >= 297)

let test_quantization_coarse_degrades () =
  let rng = Rng.create 7 in
  let mlp = Ml.Mlp.create rng ~input_dim:5 ~hidden:[| 8 |] ~output_dim:2 () in
  let ir = Model_ir.of_mlp ~name:"m" mlp in
  let q1 = Inference.quantize_weights ir ~bits:1 in
  let xs = random_inputs rng 300 5 in
  let diff = ref 0 in
  Array.iter
    (fun x -> if Inference.predict ir x <> Inference.predict q1 x then incr diff)
    xs;
  Alcotest.(check bool) "1-bit weights change decisions" true (!diff > 0)

let test_quantize_validates () =
  let ir = Model_ir.Kmeans { name = "k"; centroids = [| [| 0.5 |] |] } in
  Alcotest.check_raises "bits"
    (Invalid_argument "Inference.quantize_weights: bits outside [1, 52]")
    (fun () -> ignore (Inference.quantize_weights ir ~bits:0))

let test_map_parameters_identity () =
  let rng = Rng.create 8 in
  let mlp = Ml.Mlp.create rng ~input_dim:3 ~hidden:[| 4 |] ~output_dim:2 () in
  let ir = Model_ir.of_mlp ~name:"m" mlp in
  let same = Model_ir.map_parameters Fun.id ir in
  let xs = random_inputs rng 50 3 in
  Array.iter
    (fun x ->
      Alcotest.(check int) "identity map" (Inference.predict ir x)
        (Inference.predict same x))
    xs

(* Pipeline simulator *)

let config ~ii = { Pipeline_sim.ii_cycles = ii; pipeline_cycles = 40; clock_ghz = 1.; queue_capacity = 8 }

let test_sim_line_rate_at_ii1 () =
  let arrivals = Pipeline_sim.uniform_arrivals ~rate_gpps:1. ~n:1000 in
  let s = Pipeline_sim.simulate (config ~ii:1) ~arrivals_ns:arrivals in
  Alcotest.(check int) "no drops" 0 s.Pipeline_sim.packets_dropped;
  Alcotest.(check int) "all delivered" 1000 s.Pipeline_sim.packets_delivered;
  (* No queueing: every latency equals the pipeline depth. *)
  Alcotest.(check (float 1e-6)) "depth latency" 40. s.Pipeline_sim.mean_latency_ns;
  Alcotest.(check bool) "throughput ~ 1 Gpkt/s" true
    (s.Pipeline_sim.achieved_gpps > 0.95)

let test_sim_overload_at_ii2 () =
  (* Line-rate arrivals into an II=2 pipeline: queue fills, drops appear,
     achieved throughput halves. *)
  let arrivals = Pipeline_sim.uniform_arrivals ~rate_gpps:1. ~n:2000 in
  let s = Pipeline_sim.simulate (config ~ii:2) ~arrivals_ns:arrivals in
  Alcotest.(check bool) "drops" true (s.Pipeline_sim.packets_dropped > 0);
  Alcotest.(check bool) "half rate" true
    (s.Pipeline_sim.achieved_gpps < 0.6 && s.Pipeline_sim.achieved_gpps > 0.4);
  Alcotest.(check bool) "queue saturated" true (s.Pipeline_sim.max_queue_depth >= 7)

let test_sim_underload_at_ii2 () =
  (* Offered load below capacity: II=2 is fine at 0.4 Gpkt/s. *)
  let arrivals = Pipeline_sim.uniform_arrivals ~rate_gpps:0.4 ~n:1000 in
  let s = Pipeline_sim.simulate (config ~ii:2) ~arrivals_ns:arrivals in
  Alcotest.(check int) "no drops" 0 s.Pipeline_sim.packets_dropped;
  Alcotest.(check (float 1e-6)) "no queueing" 40. s.Pipeline_sim.mean_latency_ns

let test_sim_poisson_p99_above_mean () =
  let rng = Rng.create 9 in
  let arrivals = Pipeline_sim.poisson_arrivals rng ~rate_gpps:0.8 ~n:3000 in
  let s = Pipeline_sim.simulate (config ~ii:1) ~arrivals_ns:arrivals in
  Alcotest.(check bool) "bursts cause queueing" true
    (s.Pipeline_sim.p99_latency_ns >= s.Pipeline_sim.mean_latency_ns);
  Alcotest.(check bool) "mean above bare depth" true
    (s.Pipeline_sim.mean_latency_ns >= 40.)

let test_sim_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Pipeline_sim.simulate: arrivals must be ascending")
    (fun () ->
      ignore (Pipeline_sim.simulate (config ~ii:1) ~arrivals_ns:[| 5.; 1. |]))

let test_sim_config_of_mapping () =
  let grid = Taurus.default_grid in
  let model =
    Model_ir.Dnn
      {
        name = "m";
        layers =
          [|
            {
              Model_ir.n_in = 7;
              n_out = 8;
              activation = "relu";
              weights = Array.make_matrix 8 7 0.1;
              biases = Array.make 8 0.;
            };
          |];
      }
  in
  let mapping = Taurus.map_model grid model in
  let c = Pipeline_sim.config_of_mapping grid mapping in
  Alcotest.(check int) "II copied" mapping.Taurus.ii c.Pipeline_sim.ii_cycles;
  Alcotest.(check bool) "overhead added" true
    (c.Pipeline_sim.pipeline_cycles > mapping.Taurus.pipeline_cycles)

let suite =
  [
    Alcotest.test_case "dnn interpreter = mlp" `Quick test_dnn_interpreter_matches_mlp;
    Alcotest.test_case "dnn interpreter tanh" `Quick test_dnn_interpreter_tanh_path;
    Alcotest.test_case "kmeans interpreter" `Quick test_kmeans_interpreter_matches;
    Alcotest.test_case "svm interpreter" `Quick test_svm_interpreter_matches;
    Alcotest.test_case "tree interpreter" `Quick test_tree_interpreter_matches;
    Alcotest.test_case "interpreter dim check" `Quick test_interpreter_rejects_bad_dim;
    Alcotest.test_case "quantization 16-bit" `Quick test_quantization_close_at_16_bits;
    Alcotest.test_case "quantization 1-bit" `Quick test_quantization_coarse_degrades;
    Alcotest.test_case "quantize validates" `Quick test_quantize_validates;
    Alcotest.test_case "map_parameters id" `Quick test_map_parameters_identity;
    Alcotest.test_case "sim line rate II=1" `Quick test_sim_line_rate_at_ii1;
    Alcotest.test_case "sim overload II=2" `Quick test_sim_overload_at_ii2;
    Alcotest.test_case "sim underload II=2" `Quick test_sim_underload_at_ii2;
    Alcotest.test_case "sim poisson p99" `Quick test_sim_poisson_p99_above_mean;
    Alcotest.test_case "sim rejects unsorted" `Quick test_sim_rejects_unsorted;
    Alcotest.test_case "sim config of mapping" `Quick test_sim_config_of_mapping;
  ]
