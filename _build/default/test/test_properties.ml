(* Cross-module property tests: random DAG stage allocation, random DNN
   shapes through the grid simulator, runtime fidelity, schedule algebra. *)
open Homunculus_backends
open Homunculus_alchemy
module Rng = Homunculus_util.Rng
module Ml = Homunculus_ml

(* Random DAGs: table i may depend on any subset of earlier tables, so the
   graph is acyclic by construction. *)
let dag_gen =
  QCheck.Gen.(
    int_range 1 12 >>= fun n ->
    list_repeat n (list_size (int_range 0 3) (int_range 0 (n - 1))) >|= fun deps ->
    List.mapi
      (fun i dep_indices ->
        {
          Stage_alloc.name = Printf.sprintf "t%d" i;
          depends_on =
            List.sort_uniq compare
              (List.filter_map
                 (fun j -> if j < i then Some (Printf.sprintf "t%d" j) else None)
                 dep_indices);
        })
      deps)

let prop_stage_alloc_sound =
  QCheck.Test.make ~name:"stage allocation respects dependencies" ~count:200
    (QCheck.make dag_gen)
    (fun tables ->
      match Stage_alloc.allocate ~n_stages:32 ~tables_per_stage:4 tables with
      | Error (Stage_alloc.Capacity_exceeded _) -> true (* acceptable outcome *)
      | Error _ -> false (* acyclic by construction; names all valid *)
      | Ok allocation ->
          let stage name = List.assoc name allocation.Stage_alloc.stage_of in
          List.for_all
            (fun t ->
              List.for_all
                (fun dep -> stage t.Stage_alloc.name > stage dep)
                t.Stage_alloc.depends_on)
            tables
          && Array.for_all (fun o -> o <= 4) allocation.Stage_alloc.occupancy)

let prop_stage_alloc_critical_path_lower_bound =
  QCheck.Test.make ~name:"allocation never beats the critical path" ~count:200
    (QCheck.make dag_gen)
    (fun tables ->
      match Stage_alloc.allocate ~n_stages:64 ~tables_per_stage:64 tables with
      | Ok allocation ->
          allocation.Stage_alloc.stages_used = Stage_alloc.critical_path tables
      | Error _ -> false)

(* Random DNN shapes: the cycle-accurate simulator must agree with the
   analytical Taurus model on every one. *)
let shape_gen =
  QCheck.Gen.(
    pair (int_range 2 40) (list_size (int_range 1 6) (int_range 2 32)))

let model_of_shape (input_dim, hidden) =
  let dims = Array.of_list ((input_dim :: hidden) @ [ 2 ]) in
  let layers =
    Array.init
      (Array.length dims - 1)
      (fun i ->
        {
          Model_ir.n_in = dims.(i);
          n_out = dims.(i + 1);
          activation = "relu";
          weights = Array.make_matrix dims.(i + 1) dims.(i) 0.1;
          biases = Array.make dims.(i + 1) 0.;
        })
  in
  Model_ir.Dnn { name = "m"; layers }

let prop_grid_sim_matches_analytic =
  QCheck.Test.make ~name:"grid sim = analytic model for random shapes" ~count:100
    (QCheck.make shape_gen)
    (fun shape ->
      Grid_sim.agrees_with_analytical Taurus.default_grid (model_of_shape shape))

let prop_taurus_estimate_deterministic =
  QCheck.Test.make ~name:"taurus estimate is a pure function" ~count:100
    (QCheck.make shape_gen)
    (fun shape ->
      let model = model_of_shape shape in
      Taurus.estimate Taurus.default_grid Resource.line_rate model
      = Taurus.estimate Taurus.default_grid Resource.line_rate model)

(* Runtime fidelity: quantized trees on bounded data agree with the float
   reference almost everywhere (ties at quantization boundaries aside). *)
let prop_tree_runtime_high_fidelity =
  QCheck.Test.make ~name:"tree runtime fidelity" ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let x =
        Array.init 150 (fun _ ->
            [| Rng.uniform rng (-2.) 2.; Rng.uniform rng (-2.) 2. |])
      in
      let y = Array.map (fun r -> if r.(0) +. r.(1) > 0. then 1 else 0) x in
      let tree = Ml.Decision_tree.Classifier.fit ~x ~y ~n_classes:2 () in
      let ir =
        Model_ir.Tree
          {
            name = "t";
            root = Ml.Decision_tree.Classifier.root tree;
            n_features = 2;
            n_classes = 2;
          }
      in
      Runtime.fidelity (Runtime.load ir) ir ~x > 0.9)

(* Schedule algebra. *)
let spec name =
  Model_spec.make ~name
    ~loader:(fun () ->
      let d =
        Ml.Dataset.create ~x:[| [| 0. |]; [| 1. |] |] ~y:[| 0; 1 |] ~n_classes:2 ()
      in
      Model_spec.data ~train:d ~test:d)
    ()

let schedule_gen =
  QCheck.Gen.(
    sized
      (fix (fun self n ->
           if n <= 0 then map (fun i -> Schedule.model (spec (Printf.sprintf "m%d" i))) (int_range 0 9)
           else
             frequency
               [
                 (1, map (fun i -> Schedule.model (spec (Printf.sprintf "m%d" i))) (int_range 0 9));
                 (2, map2 Schedule.seq (self (n / 2)) (self (n / 2)));
                 (2, map2 Schedule.par (self (n / 2)) (self (n / 2)));
               ])))

let prop_schedule_counts_consistent =
  QCheck.Test.make ~name:"schedule depth/width bounded by model count" ~count:200
    (QCheck.make schedule_gen)
    (fun s ->
      let n = Schedule.n_models s in
      Schedule.depth s >= 1 && Schedule.depth s <= n
      && Schedule.width s >= 1
      && Schedule.width s <= n
      && List.length (Schedule.models s) = n)

let prop_schedule_passthrough_iomap_valid =
  QCheck.Test.make ~name:"passthrough iomap validates for any schedule" ~count:100
    (QCheck.make schedule_gen)
    (fun s ->
      (* Duplicate model names make input-drive counting ambiguous; the
         compiler dedupes specs first, so only test distinct-name DAGs. *)
      let names = List.map Model_spec.name (Schedule.models s) in
      QCheck.assume
        (List.length (List.sort_uniq compare names) = List.length names);
      Iomap.validate (Iomap.passthrough s) s = Ok ())

let suite =
  [
    QCheck_alcotest.to_alcotest prop_stage_alloc_sound;
    QCheck_alcotest.to_alcotest prop_stage_alloc_critical_path_lower_bound;
    QCheck_alcotest.to_alcotest prop_grid_sim_matches_analytic;
    QCheck_alcotest.to_alcotest prop_taurus_estimate_deterministic;
    QCheck_alcotest.to_alcotest prop_tree_runtime_high_fidelity;
    QCheck_alcotest.to_alcotest prop_schedule_counts_consistent;
    QCheck_alcotest.to_alcotest prop_schedule_passthrough_iomap_valid;
  ]
