(* The P4 AST: printer, analyses, and multi-model merging. *)
open Homunculus_backends

let has code sub =
  let n = String.length code and m = String.length sub in
  let rec go i = i + m <= n && (String.sub code i m = sub || go (i + 1)) in
  go 0

let kmeans3 = Model_ir.Kmeans { name = "tc"; centroids = Array.make_matrix 3 4 0.5 }

let svm2 =
  Model_ir.Svm
    { name = "ad"; class_weights = Array.make_matrix 2 4 0.3; biases = [| 0.; 0. |] }

let test_program_analyses () =
  let p = P4gen.program_of kmeans3 in
  Alcotest.(check int) "one table per cluster" 3 (P4_ir.table_count p);
  Alcotest.(check int) "entries requested" (3 * 64 * 4)
    (P4_ir.total_requested_entries p);
  let first = List.hd p.P4_ir.ingress.P4_ir.tables in
  (* 4 range keys of 16-bit metadata fields. *)
  Alcotest.(check int) "key bits" 64 (P4_ir.key_bits first p)

let test_key_bits_header_lookup () =
  let p = P4gen.program_of kmeans3 in
  let table =
    {
      P4_ir.table_name = "t";
      keys =
        [
          { P4_ir.target = "hdr.ipv4.ttl"; kind = P4_ir.Exact };
          { P4_ir.target = "hdr.ipv4.src"; kind = P4_ir.Lpm };
          { P4_ir.target = "meta.class_result"; kind = P4_ir.Exact };
          { P4_ir.target = "unknown.thing"; kind = P4_ir.Exact };
        ];
      action_refs = [];
      size = 1;
    }
  in
  (* 8 (ttl) + 32 (src) + 8 (class_result) + 16 (fallback). *)
  Alcotest.(check int) "mixed lookups" 64 (P4_ir.key_bits table p)

let test_print_structure () =
  let code = P4_ir.print (P4gen.program_of svm2) in
  Alcotest.(check bool) "includes" true (has code "#include <v1model.p4>");
  Alcotest.(check bool) "parser extracts" true (has code "pkt.extract(hdr.ipv4)");
  Alcotest.(check bool) "range kind" true (has code " : range;");
  Alcotest.(check bool) "action param" true (has code "action set_class(bit<8> cls)");
  Alcotest.(check bool) "action body" true (has code "meta.class_result = cls;");
  Alcotest.(check bool) "table size" true (has code "size = 64;");
  Alcotest.(check bool) "apply order" true (has code "ad_decision.apply();");
  Alcotest.(check bool) "deparser emits" true (has code "pkt.emit(hdr.ethernet)");
  Alcotest.(check bool) "v1switch" true (has code "V1Switch(IngressParser(), Ingress(), Deparser()) main;")

let test_print_if_hit () =
  let stmt =
    P4_ir.If_hit
      { table = "t"; then_ = [ P4_ir.Call "mark_to_drop(std)" ]; else_ = [] }
  in
  let p = P4gen.program_of svm2 in
  let p =
    {
      p with
      P4_ir.ingress = { p.P4_ir.ingress with P4_ir.apply = [ stmt ] };
    }
  in
  let code = P4_ir.print p in
  Alcotest.(check bool) "hit guard" true (has code "if (t.apply().hit) {");
  Alcotest.(check bool) "drop call" true (has code "mark_to_drop(std);")

let test_merge_models () =
  let merged =
    P4_ir.merge ~name:"pipeline"
      [ P4gen.program_of kmeans3; P4gen.program_of svm2 ]
  in
  Alcotest.(check int) "tables concatenated" (3 + 5) (P4_ir.table_count merged);
  let code = P4_ir.print merged in
  Alcotest.(check bool) "kmeans tables present" true (has code "tc_cluster2");
  Alcotest.(check bool) "svm tables present" true (has code "ad_decision");
  (* Headers and actions deduplicated. *)
  let count sub =
    let rec go i acc =
      if i + String.length sub > String.length code then acc
      else if String.sub code i (String.length sub) = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one ethernet header decl" 1 (count "header ethernet_t {");
  Alcotest.(check int) "one set_class action" 1 (count "action set_class(")

let test_merge_rejects_duplicates () =
  Alcotest.check_raises "duplicate tables"
    (Invalid_argument "P4_ir.merge: duplicate table names") (fun () ->
      ignore
        (P4_ir.merge ~name:"x"
           [ P4gen.program_of kmeans3; P4gen.program_of kmeans3 ]));
  Alcotest.check_raises "empty" (Invalid_argument "P4_ir.merge: no programs")
    (fun () -> ignore (P4_ir.merge ~name:"x" []))

let test_match_kinds () =
  Alcotest.(check string) "exact" "exact" (P4_ir.match_kind_to_string P4_ir.Exact);
  Alcotest.(check string) "ternary" "ternary" (P4_ir.match_kind_to_string P4_ir.Ternary);
  Alcotest.(check string) "range" "range" (P4_ir.match_kind_to_string P4_ir.Range);
  Alcotest.(check string) "lpm" "lpm" (P4_ir.match_kind_to_string P4_ir.Lpm)

let test_balanced_output () =
  List.iter
    (fun model ->
      let code = P4gen.emit model in
      let count c =
        String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 code
      in
      Alcotest.(check int)
        (Model_ir.algorithm model ^ " braces")
        (count '{') (count '}'))
    [
      kmeans3; svm2;
      Model_ir.Tree
        {
          name = "t";
          root =
            Homunculus_ml.Decision_tree.Split
              {
                feature = 0;
                threshold = 0.5;
                left = Homunculus_ml.Decision_tree.Leaf { distribution = [| 1.; 0. |] };
                right = Homunculus_ml.Decision_tree.Leaf { distribution = [| 0.; 1. |] };
              };
          n_features = 4;
          n_classes = 2;
        };
    ]

let suite =
  [
    Alcotest.test_case "program analyses" `Quick test_program_analyses;
    Alcotest.test_case "key bits lookup" `Quick test_key_bits_header_lookup;
    Alcotest.test_case "print structure" `Quick test_print_structure;
    Alcotest.test_case "print if-hit" `Quick test_print_if_hit;
    Alcotest.test_case "merge models" `Quick test_merge_models;
    Alcotest.test_case "merge rejects duplicates" `Quick test_merge_rejects_duplicates;
    Alcotest.test_case "match kinds" `Quick test_match_kinds;
    Alcotest.test_case "balanced output" `Quick test_balanced_output;
  ]
