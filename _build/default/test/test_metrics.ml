open Homunculus_ml

let feq = Alcotest.(check (float 1e-9))
let feq6 = Alcotest.(check (float 1e-6))

let test_confusion () =
  let m =
    Metrics.confusion ~n_classes:2 ~pred:[| 1; 0; 1; 1 |] ~truth:[| 1; 0; 0; 1 |]
  in
  Alcotest.(check int) "tn" 1 m.(0).(0);
  Alcotest.(check int) "fp" 1 m.(0).(1);
  Alcotest.(check int) "fn" 0 m.(1).(0);
  Alcotest.(check int) "tp" 2 m.(1).(1)

let test_confusion_rejects () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Metrics: pred/truth length mismatch") (fun () ->
      ignore (Metrics.confusion ~n_classes:2 ~pred:[| 0 |] ~truth:[| 0; 1 |]))

let test_accuracy () =
  feq "3/4" 0.75 (Metrics.accuracy ~pred:[| 1; 0; 1; 1 |] ~truth:[| 1; 0; 0; 1 |])

let test_precision_recall () =
  let pred = [| 1; 1; 0; 0; 1 |] and truth = [| 1; 0; 1; 0; 1 |] in
  feq "precision" (2. /. 3.) (Metrics.precision ~pred ~truth ());
  feq "recall" (2. /. 3.) (Metrics.recall ~pred ~truth ())

let test_f1_perfect () =
  feq "perfect" 1. (Metrics.f1 ~pred:[| 1; 0; 1 |] ~truth:[| 1; 0; 1 |] ())

let test_f1_no_positives_predicted () =
  feq "zero" 0. (Metrics.f1 ~pred:[| 0; 0 |] ~truth:[| 1; 1 |] ())

let test_f1_harmonic_mean () =
  let pred = [| 1; 1; 0; 0; 1 |] and truth = [| 1; 0; 1; 0; 1 |] in
  let p = Metrics.precision ~pred ~truth () in
  let r = Metrics.recall ~pred ~truth () in
  feq6 "harmonic" (2. *. p *. r /. (p +. r)) (Metrics.f1 ~pred ~truth ())

let test_f1_positive_class () =
  (* With positive = 0 the roles of the classes flip. *)
  let pred = [| 0; 0; 1 |] and truth = [| 0; 1; 1 |] in
  feq "pos=0 precision" 0.5 (Metrics.precision ~positive:0 ~pred ~truth ());
  feq "pos=0 recall" 1. (Metrics.recall ~positive:0 ~pred ~truth ())

let test_macro_f1 () =
  let pred = [| 0; 1; 2; 0 |] and truth = [| 0; 1; 2; 0 |] in
  feq "perfect macro" 1. (Metrics.macro_f1 ~n_classes:3 ~pred ~truth)

let test_macro_f1_partial () =
  (* Class 2 never predicted: its F1 is 0, dragging the macro average. *)
  let pred = [| 0; 1; 0; 1 |] and truth = [| 0; 1; 2; 2 |] in
  let m = Metrics.macro_f1 ~n_classes:3 ~pred ~truth in
  Alcotest.(check bool) "strictly below 1" true (m < 1.);
  Alcotest.(check bool) "above 0" true (m > 0.)

let test_f1_percent () =
  feq "percent" 100. (Metrics.f1_percent ~pred:[| 1 |] ~truth:[| 1 |] ())

let test_homogeneity_perfect () =
  feq6 "clusters = classes" 1.
    (Metrics.homogeneity ~pred:[| 0; 0; 1; 1 |] ~truth:[| 1; 1; 0; 0 |])

let test_homogeneity_merged () =
  (* One cluster holding both classes is maximally inhomogeneous. *)
  feq6 "single cluster" 0.
    (Metrics.homogeneity ~pred:[| 0; 0; 0; 0 |] ~truth:[| 0; 0; 1; 1 |])

let test_completeness_split () =
  (* Every sample its own cluster: perfectly homogeneous, half complete
     (H(K|C) = log 2, H(K) = log 4). *)
  let pred = [| 0; 1; 2; 3 |] and truth = [| 0; 0; 1; 1 |] in
  feq6 "homogeneous" 1. (Metrics.homogeneity ~pred ~truth);
  feq6 "half complete" 0.5 (Metrics.completeness ~pred ~truth)

let test_v_measure_perfect () =
  feq6 "perfect" 1. (Metrics.v_measure ~pred:[| 1; 1; 0 |] ~truth:[| 0; 0; 1 |] ())

let test_v_measure_zero () =
  feq6 "uninformative" 0.
    (Metrics.v_measure ~pred:[| 0; 0; 0; 0 |] ~truth:[| 0; 0; 1; 1 |] ())

let test_v_measure_beta () =
  (* h = 1, c = 0.5: v_beta = (1+b)*h*c / (b*h + c). Larger beta weights the
     weaker completeness more, lowering the score. *)
  let pred = [| 0; 1; 2; 3 |] and truth = [| 0; 0; 1; 1 |] in
  feq6 "beta=1" (2. *. 0.5 /. 1.5) (Metrics.v_measure ~beta:1. ~pred ~truth ());
  feq6 "beta=2" (3. *. 0.5 /. 2.5) (Metrics.v_measure ~beta:2. ~pred ~truth ());
  Alcotest.(check bool) "beta=2 below beta=1" true
    (Metrics.v_measure ~beta:2. ~pred ~truth ()
    < Metrics.v_measure ~beta:1. ~pred ~truth ())

let test_v_measure_monotone_in_merging () =
  (* Merging the correct clusters improves V-measure over a random merge. *)
  let truth = [| 0; 0; 0; 1; 1; 1 |] in
  let good = [| 0; 0; 0; 1; 1; 1 |] in
  let bad = [| 0; 1; 0; 1; 0; 1 |] in
  Alcotest.(check bool) "good > bad" true
    (Metrics.v_measure ~pred:good ~truth () > Metrics.v_measure ~pred:bad ~truth ())

let labels_gen n_classes =
  QCheck.(array_of_size Gen.(int_range 2 40) (int_range 0 (n_classes - 1)))

let prop_f1_bounded =
  QCheck.Test.make ~name:"f1 in [0,1]" ~count:200
    QCheck.(pair (labels_gen 2) (labels_gen 2))
    (fun (pred, truth) ->
      QCheck.assume (Array.length pred = Array.length truth);
      let f = Metrics.f1 ~pred ~truth () in
      f >= 0. && f <= 1.)

let prop_accuracy_bounded =
  QCheck.Test.make ~name:"accuracy in [0,1]" ~count:200
    QCheck.(pair (labels_gen 3) (labels_gen 3))
    (fun (pred, truth) ->
      QCheck.assume (Array.length pred = Array.length truth);
      let a = Metrics.accuracy ~pred ~truth in
      a >= 0. && a <= 1.)

let prop_v_measure_bounded =
  QCheck.Test.make ~name:"v-measure in [0,1]" ~count:200
    QCheck.(pair (labels_gen 4) (labels_gen 3))
    (fun (pred, truth) ->
      QCheck.assume (Array.length pred = Array.length truth);
      let v = Metrics.v_measure ~pred ~truth () in
      v >= -1e-9 && v <= 1. +. 1e-9)

let prop_v_measure_symmetric =
  QCheck.Test.make ~name:"v-measure symmetric (beta=1)" ~count:200
    QCheck.(pair (labels_gen 3) (labels_gen 3))
    (fun (pred, truth) ->
      QCheck.assume (Array.length pred = Array.length truth);
      let a = Metrics.v_measure ~pred ~truth () in
      let b = Metrics.v_measure ~pred:truth ~truth:pred () in
      Float.abs (a -. b) < 1e-9)

let suite =
  [
    Alcotest.test_case "confusion" `Quick test_confusion;
    Alcotest.test_case "confusion rejects" `Quick test_confusion_rejects;
    Alcotest.test_case "accuracy" `Quick test_accuracy;
    Alcotest.test_case "precision/recall" `Quick test_precision_recall;
    Alcotest.test_case "f1 perfect" `Quick test_f1_perfect;
    Alcotest.test_case "f1 degenerate" `Quick test_f1_no_positives_predicted;
    Alcotest.test_case "f1 harmonic" `Quick test_f1_harmonic_mean;
    Alcotest.test_case "f1 positive class" `Quick test_f1_positive_class;
    Alcotest.test_case "macro f1 perfect" `Quick test_macro_f1;
    Alcotest.test_case "macro f1 partial" `Quick test_macro_f1_partial;
    Alcotest.test_case "f1 percent" `Quick test_f1_percent;
    Alcotest.test_case "homogeneity perfect" `Quick test_homogeneity_perfect;
    Alcotest.test_case "homogeneity merged" `Quick test_homogeneity_merged;
    Alcotest.test_case "completeness split" `Quick test_completeness_split;
    Alcotest.test_case "v-measure perfect" `Quick test_v_measure_perfect;
    Alcotest.test_case "v-measure zero" `Quick test_v_measure_zero;
    Alcotest.test_case "v-measure beta" `Quick test_v_measure_beta;
    Alcotest.test_case "v-measure ranks merges" `Quick test_v_measure_monotone_in_merging;
    QCheck_alcotest.to_alcotest prop_f1_bounded;
    QCheck_alcotest.to_alcotest prop_accuracy_bounded;
    QCheck_alcotest.to_alcotest prop_v_measure_bounded;
    QCheck_alcotest.to_alcotest prop_v_measure_symmetric;
  ]
