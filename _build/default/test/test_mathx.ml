open Homunculus_util

let feq = Alcotest.(check (float 1e-9))
let feq6 = Alcotest.(check (float 1e-6))

let test_clamp () =
  feq "below" 0. (Mathx.clamp ~lo:0. ~hi:1. (-5.));
  feq "above" 1. (Mathx.clamp ~lo:0. ~hi:1. 5.);
  feq "inside" 0.5 (Mathx.clamp ~lo:0. ~hi:1. 0.5)

let test_clamp_int () =
  Alcotest.(check int) "below" 2 (Mathx.clamp_int ~lo:2 ~hi:8 1);
  Alcotest.(check int) "above" 8 (Mathx.clamp_int ~lo:2 ~hi:8 9);
  Alcotest.(check int) "inside" 5 (Mathx.clamp_int ~lo:2 ~hi:8 5)

let test_sigmoid_values () =
  feq "zero" 0.5 (Mathx.sigmoid 0.);
  feq6 "symmetry" 1. (Mathx.sigmoid 3. +. Mathx.sigmoid (-3.));
  Alcotest.(check bool) "large positive" true (Mathx.sigmoid 100. > 0.999);
  Alcotest.(check bool) "large negative" true (Mathx.sigmoid (-100.) < 0.001)

let test_sigmoid_stable () =
  Alcotest.(check bool) "no overflow" true
    (Float.is_finite (Mathx.sigmoid (-1e8)) && Float.is_finite (Mathx.sigmoid 1e8))

let test_log_sum_exp () =
  feq6 "two equal" (log 2.) (Mathx.log_sum_exp [| 0.; 0. |]);
  feq6 "shift invariance"
    (Mathx.log_sum_exp [| 1.; 2.; 3. |] +. 10.)
    (Mathx.log_sum_exp [| 11.; 12.; 13. |]);
  Alcotest.(check bool) "empty" true (Mathx.log_sum_exp [||] = neg_infinity);
  Alcotest.(check bool) "huge values stable" true
    (Float.is_finite (Mathx.log_sum_exp [| 1e4; 1e4 |]))

let test_softmax () =
  let p = Mathx.softmax [| 1.; 1.; 1. |] in
  Alcotest.(check (array (float 1e-9))) "uniform" [| 1. /. 3.; 1. /. 3.; 1. /. 3. |] p;
  let q = Mathx.softmax [| 1000.; 0. |] in
  Alcotest.(check bool) "stable argmax" true (q.(0) > 0.999)

let test_softmax_sums_to_one () =
  let p = Mathx.softmax [| -3.; 0.; 2.; 5. |] in
  feq6 "sum" 1. (Array.fold_left ( +. ) 0. p)

let test_normal_pdf () =
  feq6 "at zero" (1. /. sqrt (2. *. Float.pi)) (Mathx.normal_pdf 0.);
  Alcotest.(check bool) "symmetric" true
    (Float.abs (Mathx.normal_pdf 1.3 -. Mathx.normal_pdf (-1.3)) < 1e-12)

let test_normal_cdf () =
  Alcotest.(check (float 1e-6)) "at zero" 0.5 (Mathx.normal_cdf 0.);
  Alcotest.(check (float 1e-4)) "at 1.96" 0.975 (Mathx.normal_cdf 1.96);
  Alcotest.(check (float 1e-4)) "at -1.96" 0.025 (Mathx.normal_cdf (-1.96));
  Alcotest.(check bool) "monotone" true
    (Mathx.normal_cdf (-1.) < Mathx.normal_cdf 0. && Mathx.normal_cdf 0. < Mathx.normal_cdf 1.)

let test_ceil_div () =
  Alcotest.(check int) "exact" 3 (Mathx.ceil_div 9 3);
  Alcotest.(check int) "round up" 4 (Mathx.ceil_div 10 3);
  Alcotest.(check int) "zero" 0 (Mathx.ceil_div 0 4);
  Alcotest.check_raises "bad divisor"
    (Invalid_argument "Mathx.ceil_div: non-positive divisor") (fun () ->
      ignore (Mathx.ceil_div 1 0))

let test_round_to () =
  feq "two digits" 3.14 (Mathx.round_to 2 3.14159);
  feq "zero digits" 3. (Mathx.round_to 0 3.14159)

let test_approx_equal () =
  Alcotest.(check bool) "close" true (Mathx.approx_equal 1. (1. +. 1e-12));
  Alcotest.(check bool) "far" false (Mathx.approx_equal 1. 1.1);
  Alcotest.(check bool) "custom eps" true (Mathx.approx_equal ~eps:0.2 1. 1.1)

let test_linspace () =
  Alcotest.(check (array (float 1e-9))) "0..1 in 5" [| 0.; 0.25; 0.5; 0.75; 1. |]
    (Mathx.linspace 0. 1. 5);
  Alcotest.check_raises "n=1"
    (Invalid_argument "Mathx.linspace: need at least two points") (fun () ->
      ignore (Mathx.linspace 0. 1. 1))

let prop_cdf_monotone =
  QCheck.Test.make ~name:"normal_cdf monotone" ~count:200
    QCheck.(pair (float_range (-5.) 5.) (float_range 0. 2.))
    (fun (x, dx) -> Mathx.normal_cdf x <= Mathx.normal_cdf (x +. dx) +. 1e-9)

let prop_softmax_distribution =
  QCheck.Test.make ~name:"softmax is a distribution" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 10) (float_range (-50.) 50.))
    (fun xs ->
      let p = Mathx.softmax xs in
      Array.for_all (fun v -> v >= 0. && v <= 1.) p
      && Float.abs (Array.fold_left ( +. ) 0. p -. 1.) < 1e-6)

let suite =
  [
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "clamp_int" `Quick test_clamp_int;
    Alcotest.test_case "sigmoid values" `Quick test_sigmoid_values;
    Alcotest.test_case "sigmoid stable" `Quick test_sigmoid_stable;
    Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
    Alcotest.test_case "softmax" `Quick test_softmax;
    Alcotest.test_case "softmax sums" `Quick test_softmax_sums_to_one;
    Alcotest.test_case "normal pdf" `Quick test_normal_pdf;
    Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
    Alcotest.test_case "ceil_div" `Quick test_ceil_div;
    Alcotest.test_case "round_to" `Quick test_round_to;
    Alcotest.test_case "approx_equal" `Quick test_approx_equal;
    Alcotest.test_case "linspace" `Quick test_linspace;
    QCheck_alcotest.to_alcotest prop_cdf_monotone;
    QCheck_alcotest.to_alcotest prop_softmax_distribution;
  ]
