(* Standardization folding: the deployed IR must produce the same decisions
   on raw features as the trained model does on standardized ones. *)
open Homunculus_backends
module Ml = Homunculus_ml
module Rng = Homunculus_util.Rng

let raw_data seed n =
  (* Features with wildly different scales, like real packet fields. *)
  let rng = Rng.create seed in
  Array.init n (fun i ->
      let shift = if i mod 2 = 0 then 0. else 1. in
      [|
        Rng.gaussian rng ~mu:(1400. +. (200. *. shift)) ~sigma:80. ();
        Rng.gaussian rng ~mu:(0.001 +. (0.002 *. shift)) ~sigma:0.0005 ();
        Rng.gaussian rng ~mu:(64. +. (10. *. shift)) ~sigma:3. ();
      |])

let check_exact_agreement ~name ir_scaled scaler raw =
  let folded =
    Model_ir.fold_standardization ~mean:(Ml.Scaler.mean scaler)
      ~stddev:(Ml.Scaler.stddev scaler) ir_scaled
  in
  Array.iter
    (fun x ->
      let scaled = Ml.Scaler.transform_row scaler x in
      Alcotest.(check int) name
        (Inference.predict ir_scaled scaled)
        (Inference.predict folded x))
    raw

let test_fold_dnn_exact () =
  let raw = raw_data 1 300 in
  let scaler = Ml.Scaler.fit raw in
  let mlp = Ml.Mlp.create (Rng.create 2) ~input_dim:3 ~hidden:[| 6; 4 |] ~output_dim:2 () in
  check_exact_agreement ~name:"dnn raw = scaled"
    (Model_ir.of_mlp ~name:"m" mlp) scaler raw

let test_fold_dnn_scores_close () =
  let raw = raw_data 3 100 in
  let scaler = Ml.Scaler.fit raw in
  let mlp = Ml.Mlp.create (Rng.create 4) ~input_dim:3 ~hidden:[| 5 |] ~output_dim:2 () in
  let ir = Model_ir.of_mlp ~name:"m" mlp in
  let folded =
    Model_ir.fold_standardization ~mean:(Ml.Scaler.mean scaler)
      ~stddev:(Ml.Scaler.stddev scaler) ir
  in
  Array.iter
    (fun x ->
      let a = Inference.scores ir (Ml.Scaler.transform_row scaler x) in
      let b = Inference.scores folded x in
      Array.iteri
        (fun i v ->
          Alcotest.(check bool) "logits match to 1e-6" true
            (Float.abs (v -. b.(i)) < 1e-6))
        a)
    raw

let test_fold_svm_exact () =
  let raw = raw_data 5 300 in
  let scaler = Ml.Scaler.fit raw in
  let scaled = Ml.Scaler.transform scaler raw in
  let y = Array.init 300 (fun i -> i mod 2) in
  let d = Ml.Dataset.create ~x:scaled ~y ~n_classes:2 () in
  let svm = Ml.Svm.fit (Rng.create 6) d in
  check_exact_agreement ~name:"svm raw = scaled" (Model_ir.of_svm ~name:"s" svm)
    scaler raw

let test_fold_tree_exact () =
  let raw = raw_data 7 300 in
  let scaler = Ml.Scaler.fit raw in
  let scaled = Ml.Scaler.transform scaler raw in
  let y = Array.init 300 (fun i -> i mod 2) in
  let tree = Ml.Decision_tree.Classifier.fit ~x:scaled ~y ~n_classes:2 () in
  let ir =
    Model_ir.Tree
      { name = "t"; root = Ml.Decision_tree.Classifier.root tree; n_features = 3; n_classes = 2 }
  in
  check_exact_agreement ~name:"tree raw = scaled" ir scaler raw

let test_fold_kmeans_cells () =
  (* Centroids land at the raw-space cluster centers. *)
  let raw = raw_data 8 200 in
  let scaler = Ml.Scaler.fit raw in
  let scaled = Ml.Scaler.transform scaler raw in
  let km = Ml.Kmeans.fit (Rng.create 9) ~k:2 scaled in
  let ir = Model_ir.of_kmeans ~name:"k" km in
  let folded =
    Model_ir.fold_standardization ~mean:(Ml.Scaler.mean scaler)
      ~stddev:(Ml.Scaler.stddev scaler) ir
  in
  match folded with
  | Model_ir.Kmeans { centroids; _ } ->
      Array.iter
        (fun c ->
          Alcotest.(check bool) "frame_size-scale coordinate" true
            (c.(0) > 1000. && c.(0) < 2000.))
        centroids
  | _ -> Alcotest.fail "expected kmeans"

let test_fold_validates () =
  let ir = Model_ir.Kmeans { name = "k"; centroids = [| [| 0.; 0. |] |] } in
  Alcotest.check_raises "dims"
    (Invalid_argument "Model_ir.fold_standardization: dimension mismatch")
    (fun () ->
      ignore (Model_ir.fold_standardization ~mean:[| 0. |] ~stddev:[| 1. |] ir));
  Alcotest.check_raises "sigma"
    (Invalid_argument "Model_ir.fold_standardization: non-positive stddev")
    (fun () ->
      ignore
        (Model_ir.fold_standardization ~mean:[| 0.; 0. |] ~stddev:[| 1.; 0. |] ir))

let test_evaluator_artifacts_consume_raw_features () =
  (* End-to-end: the artifact from a search classifies raw test rows well. *)
  let open Homunculus_alchemy in
  let raw = raw_data 10 400 in
  let y = Array.init 400 (fun i -> i mod 2) in
  let d = Ml.Dataset.create ~x:raw ~y ~n_classes:2 () in
  let spec =
    Model_spec.make ~name:"rawtest" ~algorithms:[ Homunculus_alchemy.Model_spec.Tree ]
      ~loader:(fun () -> Model_spec.data ~train:d ~test:d)
      ()
  in
  let result =
    Homunculus_core.Compiler.search_model
      ~options:Homunculus_core.Compiler.quick_options (Platform.taurus ()) spec
  in
  let ir = result.Homunculus_core.Compiler.artifact.Homunculus_core.Evaluator.model_ir in
  let pred = Inference.predict_all ir raw in
  let acc = Ml.Metrics.accuracy ~pred ~truth:y in
  Alcotest.(check bool) "raw-feature accuracy high" true (acc > 0.85)

let suite =
  [
    Alcotest.test_case "fold dnn exact" `Quick test_fold_dnn_exact;
    Alcotest.test_case "fold dnn scores" `Quick test_fold_dnn_scores_close;
    Alcotest.test_case "fold svm exact" `Quick test_fold_svm_exact;
    Alcotest.test_case "fold tree exact" `Quick test_fold_tree_exact;
    Alcotest.test_case "fold kmeans raw centroids" `Quick test_fold_kmeans_cells;
    Alcotest.test_case "fold validates" `Quick test_fold_validates;
    Alcotest.test_case "artifacts consume raw features" `Quick
      test_evaluator_artifacts_consume_raw_features;
  ]
