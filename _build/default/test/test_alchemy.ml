(* Model specs, platforms, schedules, IO maps. *)
open Homunculus_alchemy
open Homunculus_backends
module Rng = Homunculus_util.Rng
module Dataset = Homunculus_ml.Dataset

let tiny_dataset seed n =
  let rng = Rng.create seed in
  let x = Array.init n (fun _ -> [| Rng.float rng 1.; Rng.float rng 1. |]) in
  let y = Array.init n (fun i -> i mod 2) in
  Dataset.create ~feature_names:[| "a"; "b" |] ~x ~y ~n_classes:2 ()

let spec ?(name = "m") () =
  Model_spec.make ~name
    ~loader:(fun () ->
      Model_spec.data ~train:(tiny_dataset 1 40) ~test:(tiny_dataset 2 20))
    ()

(* Model_spec *)

let test_spec_defaults () =
  let s = spec () in
  Alcotest.(check string) "name" "m" (Model_spec.name s);
  Alcotest.(check bool) "default metric f1" true (Model_spec.metric s = Model_spec.F1);
  Alcotest.(check int) "all algorithms" 4 (List.length (Model_spec.algorithms s))

let test_spec_loader_cached () =
  let calls = ref 0 in
  let s =
    Model_spec.make ~name:"cached"
      ~loader:(fun () ->
        incr calls;
        Model_spec.data ~train:(tiny_dataset 1 10) ~test:(tiny_dataset 2 10))
      ()
  in
  let _ = Model_spec.load s in
  let _ = Model_spec.load s in
  Alcotest.(check int) "loader ran once" 1 !calls

let test_spec_data_validates_schema () =
  let train = tiny_dataset 1 10 in
  let test =
    Dataset.create ~feature_names:[| "x"; "y" |]
      ~x:[| [| 0.; 0. |] |] ~y:[| 0 |] ~n_classes:2 ()
  in
  Alcotest.check_raises "schema"
    (Invalid_argument "Model_spec.data: train/test feature schema mismatch")
    (fun () -> ignore (Model_spec.data ~train ~test))

let test_spec_rejects_empty () =
  Alcotest.check_raises "empty name" (Invalid_argument "Model_spec.make: empty name")
    (fun () ->
      ignore
        (Model_spec.make ~name:""
           ~loader:(fun () ->
             Model_spec.data ~train:(tiny_dataset 1 10) ~test:(tiny_dataset 2 10))
           ()));
  Alcotest.check_raises "no algorithms"
    (Invalid_argument "Model_spec.make: empty algorithm list") (fun () ->
      ignore
        (Model_spec.make ~name:"x" ~algorithms:[]
           ~loader:(fun () ->
             Model_spec.data ~train:(tiny_dataset 1 10) ~test:(tiny_dataset 2 10))
           ()))

let test_spec_strings () =
  Alcotest.(check string) "metric" "v_measure" (Model_spec.metric_to_string Model_spec.V_measure);
  Alcotest.(check string) "algorithm" "kmeans" (Model_spec.algorithm_to_string Model_spec.Kmeans)

(* Platform *)

let test_platform_names () =
  Alcotest.(check string) "taurus" "taurus-16x16" (Platform.name (Platform.taurus ()));
  Alcotest.(check string) "tofino" "tofino-32mat" (Platform.name (Platform.tofino ()));
  Alcotest.(check string) "fpga" "alveo-u250" (Platform.name (Platform.fpga ()))

let test_platform_default_perf () =
  let p = Platform.perf (Platform.taurus ()) in
  Alcotest.(check (float 0.)) "1 Gpkt/s" 1. p.Resource.min_throughput_gpps;
  Alcotest.(check (float 0.)) "500 ns" 500. p.Resource.max_latency_ns

let test_platform_constrain () =
  let p = Platform.constrain (Platform.taurus ()) ~max_latency_ns:200. () in
  Alcotest.(check (float 0.)) "tightened" 200. (Platform.perf p).Resource.max_latency_ns;
  Alcotest.(check (float 0.)) "throughput untouched" 1.
    (Platform.perf p).Resource.min_throughput_gpps

let test_platform_with_resources () =
  let p = Platform.with_resources (Platform.taurus ()) ~rows:8 ~cols:8 in
  Alcotest.(check string) "resized" "taurus-8x8" (Platform.name p);
  Alcotest.check_raises "tofino has no grid"
    (Invalid_argument "Platform.with_resources: only Taurus grids have rows/cols")
    (fun () -> ignore (Platform.with_resources (Platform.tofino ()) ~rows:4 ~cols:4))

let test_platform_with_tables () =
  let p = Platform.with_tables (Platform.tofino ()) 5 in
  Alcotest.(check string) "resized" "tofino-5mat" (Platform.name p);
  Alcotest.check_raises "taurus has no tables"
    (Invalid_argument "Platform.with_tables: only Tofino targets have MAT budgets")
    (fun () -> ignore (Platform.with_tables (Platform.taurus ()) 5))

let test_platform_supports () =
  let taurus = Platform.taurus () and tofino = Platform.tofino () in
  Alcotest.(check bool) "taurus dnn" true (Platform.supports taurus Model_spec.Dnn);
  Alcotest.(check bool) "tofino dnn" false (Platform.supports tofino Model_spec.Dnn);
  Alcotest.(check bool) "tofino svm" true (Platform.supports tofino Model_spec.Svm);
  Alcotest.(check bool) "fpga tree" true (Platform.supports (Platform.fpga ()) Model_spec.Tree)

let test_platform_estimate_dispatch () =
  let km = Model_ir.Kmeans { name = "k"; centroids = Array.make_matrix 3 4 0.1 } in
  let vt = Platform.estimate (Platform.taurus ()) km in
  Alcotest.(check bool) "taurus reports CU" true (Resource.find_usage vt "CU" <> None);
  let vm = Platform.estimate (Platform.tofino ()) km in
  Alcotest.(check bool) "tofino reports MAT" true (Resource.find_usage vm "MAT" <> None);
  let vf = Platform.estimate (Platform.fpga ()) km in
  Alcotest.(check bool) "fpga reports LUT" true (Resource.find_usage vf "LUT" <> None)

(* Schedule *)

let test_schedule_structure () =
  let a = spec ~name:"a" () and b = spec ~name:"b" () and c = spec ~name:"c" () in
  let s = Schedule.(model a >>> (model b ||| model c)) in
  Alcotest.(check int) "3 models" 3 (Schedule.n_models s);
  Alcotest.(check int) "depth 2" 2 (Schedule.depth s);
  Alcotest.(check int) "width 2" 2 (Schedule.width s);
  Alcotest.(check (list string)) "leaf order" [ "a"; "b"; "c" ]
    (List.map Model_spec.name (Schedule.models s));
  Alcotest.(check string) "notation" "(a > (b | c))" (Schedule.to_string s)

let test_schedule_chain_depth () =
  let m () = Schedule.model (spec ~name:"x" ()) in
  let s = Schedule.(m () >>> m () >>> m () >>> m ()) in
  Alcotest.(check int) "depth 4" 4 (Schedule.depth s);
  Alcotest.(check int) "width 1" 1 (Schedule.width s)

let mk_verdict ~cus ~latency ~gpps =
  Resource.check Resource.line_rate
    ~usages:
      [
        Resource.usage ~resource:"CU" ~used:(float_of_int cus) ~available:128.;
        Resource.usage ~resource:"MU" ~used:10. ~available:128.;
      ]
    ~latency_ns:latency ~throughput_gpps:gpps

let test_schedule_combine_seq_adds_latency () =
  let a = spec ~name:"a" () and b = spec ~name:"b" () in
  let s = Schedule.(model a >>> model b) in
  let estimate _ = mk_verdict ~cus:10 ~latency:50. ~gpps:1. in
  let c = Schedule.combine s ~perf:Resource.line_rate ~estimate in
  Alcotest.(check (float 1e-9)) "latency adds" 100. c.Schedule.verdict.Resource.latency_ns;
  (match Resource.find_usage c.Schedule.verdict "CU" with
  | Some u -> Alcotest.(check (float 1e-9)) "CUs add" 20. u.Resource.used
  | None -> Alcotest.fail "CU missing");
  Alcotest.(check int) "per-model verdicts" 2 (List.length c.Schedule.per_model)

let test_schedule_combine_par_max_latency () =
  let a = spec ~name:"a" () and b = spec ~name:"b" () in
  let s = Schedule.(model a ||| model b) in
  let estimate sp =
    if Model_spec.name sp = "a" then mk_verdict ~cus:10 ~latency:40. ~gpps:1.
    else mk_verdict ~cus:5 ~latency:90. ~gpps:1.
  in
  let c = Schedule.combine s ~perf:Resource.line_rate ~estimate in
  Alcotest.(check (float 1e-9)) "latency max" 90. c.Schedule.verdict.Resource.latency_ns

let test_schedule_combine_min_throughput () =
  (* Paper §3.2.1: a 1 Gpkt/s model feeding a 0.5 Gpkt/s model runs at 0.5. *)
  let a = spec ~name:"a" () and b = spec ~name:"b" () in
  let s = Schedule.(model a >>> model b) in
  let estimate sp =
    if Model_spec.name sp = "a" then mk_verdict ~cus:1 ~latency:10. ~gpps:1.
    else mk_verdict ~cus:1 ~latency:10. ~gpps:0.5
  in
  let c = Schedule.combine s ~perf:Resource.line_rate ~estimate in
  Alcotest.(check (float 1e-9)) "min throughput" 0.5
    c.Schedule.verdict.Resource.throughput_gpps;
  Alcotest.(check bool) "violates line rate" false c.Schedule.verdict.Resource.feasible

let test_schedule_combine_resource_overflow () =
  let m () = Schedule.model (spec ~name:"x" ()) in
  let s = Schedule.(m () ||| m ()) in
  let estimate _ = mk_verdict ~cus:100 ~latency:10. ~gpps:1. in
  let c = Schedule.combine s ~perf:Resource.line_rate ~estimate in
  Alcotest.(check bool) "200 CUs over 128" false c.Schedule.verdict.Resource.feasible

(* Iomap *)

let test_iomap_passthrough_single () =
  let s = Schedule.model (spec ~name:"only" ()) in
  let io = Iomap.passthrough s in
  Alcotest.(check int) "in + out" 2 (List.length (Iomap.connections io));
  Alcotest.(check bool) "validates" true (Iomap.validate io s = Ok ())

let test_iomap_passthrough_seq () =
  let a = spec ~name:"a" () and b = spec ~name:"b" () in
  let s = Schedule.(model a >>> model b) in
  let io = Iomap.passthrough s in
  (* packet_in -> a, a -> b, b -> verdict_out. *)
  Alcotest.(check int) "three wires" 3 (List.length (Iomap.connections io));
  Alcotest.(check bool) "validates" true (Iomap.validate io s = Ok ())

let test_iomap_passthrough_par () =
  let a = spec ~name:"a" () and b = spec ~name:"b" () in
  let s = Schedule.(model a ||| model b) in
  let io = Iomap.passthrough s in
  Alcotest.(check int) "two entries, two exits" 4 (List.length (Iomap.connections io));
  Alcotest.(check bool) "validates" true (Iomap.validate io s = Ok ())

let test_iomap_validate_catches_unknown_model () =
  let s = Schedule.model (spec ~name:"real" ()) in
  let io =
    Iomap.connect Iomap.empty ~src:(Iomap.External "packet_in")
      ~dst:(Iomap.Model_port { model = "ghost"; port = "in" })
  in
  match Iomap.validate io s with
  | Error problems -> Alcotest.(check bool) "two problems" true (List.length problems >= 2)
  | Ok () -> Alcotest.fail "expected validation errors"

let test_iomap_validate_catches_duplicate_wire () =
  let s = Schedule.model (spec ~name:"a" ()) in
  let wire io = Iomap.connect io ~src:(Iomap.External "packet_in")
      ~dst:(Iomap.Model_port { model = "a"; port = "in" }) in
  let io = wire (wire Iomap.empty) in
  (match Iomap.validate io s with
  | Error [ msg ] ->
      Alcotest.(check string) "message" "duplicate wire packet_in -> a.in" msg
  | Error _ | Ok () -> Alcotest.fail "expected exactly one error");
  (* Fan-in from two *different* sources is legal. *)
  let fan_in =
    Iomap.connect
      (Iomap.connect Iomap.empty ~src:(Iomap.External "packet_in")
         ~dst:(Iomap.Model_port { model = "a"; port = "in" }))
      ~src:(Iomap.External "other_port")
      ~dst:(Iomap.Model_port { model = "a"; port = "in" })
  in
  Alcotest.(check bool) "fan-in accepted" true (Iomap.validate fan_in s = Ok ())

let test_iomap_rejects_self_wire () =
  Alcotest.check_raises "self" (Invalid_argument "Iomap.connect: self-wire")
    (fun () ->
      ignore
        (Iomap.connect Iomap.empty ~src:(Iomap.External "x")
           ~dst:(Iomap.External "x")))

let test_iomap_endpoint_to_string () =
  Alcotest.(check string) "external" "packet_in"
    (Iomap.endpoint_to_string (Iomap.External "packet_in"));
  Alcotest.(check string) "port" "ad.out"
    (Iomap.endpoint_to_string (Iomap.Model_port { model = "ad"; port = "out" }))

let suite =
  [
    Alcotest.test_case "spec defaults" `Quick test_spec_defaults;
    Alcotest.test_case "spec loader cached" `Quick test_spec_loader_cached;
    Alcotest.test_case "spec schema validation" `Quick test_spec_data_validates_schema;
    Alcotest.test_case "spec rejects empties" `Quick test_spec_rejects_empty;
    Alcotest.test_case "spec strings" `Quick test_spec_strings;
    Alcotest.test_case "platform names" `Quick test_platform_names;
    Alcotest.test_case "platform default perf" `Quick test_platform_default_perf;
    Alcotest.test_case "platform constrain" `Quick test_platform_constrain;
    Alcotest.test_case "platform resources" `Quick test_platform_with_resources;
    Alcotest.test_case "platform tables" `Quick test_platform_with_tables;
    Alcotest.test_case "platform supports" `Quick test_platform_supports;
    Alcotest.test_case "platform estimate dispatch" `Quick test_platform_estimate_dispatch;
    Alcotest.test_case "schedule structure" `Quick test_schedule_structure;
    Alcotest.test_case "schedule chain depth" `Quick test_schedule_chain_depth;
    Alcotest.test_case "combine seq latency" `Quick test_schedule_combine_seq_adds_latency;
    Alcotest.test_case "combine par latency" `Quick test_schedule_combine_par_max_latency;
    Alcotest.test_case "combine min throughput" `Quick test_schedule_combine_min_throughput;
    Alcotest.test_case "combine overflow" `Quick test_schedule_combine_resource_overflow;
    Alcotest.test_case "iomap single" `Quick test_iomap_passthrough_single;
    Alcotest.test_case "iomap seq" `Quick test_iomap_passthrough_seq;
    Alcotest.test_case "iomap par" `Quick test_iomap_passthrough_par;
    Alcotest.test_case "iomap unknown model" `Quick test_iomap_validate_catches_unknown_model;
    Alcotest.test_case "iomap duplicate wire" `Quick test_iomap_validate_catches_duplicate_wire;
    Alcotest.test_case "iomap self wire" `Quick test_iomap_rejects_self_wire;
    Alcotest.test_case "iomap endpoint string" `Quick test_iomap_endpoint_to_string;
  ]
