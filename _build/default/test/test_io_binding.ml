(* Dataset CSV I/O and feature-to-header bindings. *)
open Homunculus_ml
open Homunculus_backends
module Rng = Homunculus_util.Rng

let sample_dataset =
  Dataset.create
    ~feature_names:[| "frame_size"; "ttl" |]
    ~x:[| [| 1400.5; 64. |]; [| 90.25; 255. |]; [| 0.001; 128. |] |]
    ~y:[| 0; 1; 2 |] ~n_classes:3 ()

let test_csv_roundtrip () =
  let back = Dataset_io.of_csv (Dataset_io.to_csv sample_dataset) in
  Alcotest.(check (array string)) "names" sample_dataset.Dataset.feature_names
    back.Dataset.feature_names;
  Alcotest.(check bool) "x exact" true (back.Dataset.x = sample_dataset.Dataset.x);
  Alcotest.(check (array int)) "y" sample_dataset.Dataset.y back.Dataset.y;
  Alcotest.(check int) "classes inferred" 3 back.Dataset.n_classes

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "homunculus" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset_io.save ~path sample_dataset;
      let back = Dataset_io.load path in
      Alcotest.(check bool) "file roundtrip" true
        (back.Dataset.x = sample_dataset.Dataset.x))

let test_csv_custom_label_column () =
  let text = "label,a\n1,0.5\n0,0.25\n" in
  let d = Dataset_io.of_csv text in
  Alcotest.(check (array string)) "a only" [| "a" |] d.Dataset.feature_names;
  Alcotest.(check (array int)) "labels from first column" [| 1; 0 |] d.Dataset.y

let test_csv_rejects_ragged () =
  Alcotest.(check bool) "ragged" true
    (try ignore (Dataset_io.of_csv "a,label\n1,0\n1,2,3\n"); false
     with Invalid_argument msg ->
       (* The error names the offending line. *)
       String.length msg > 0 && String.contains msg '3')

let test_csv_rejects_bad_label () =
  Alcotest.(check bool) "fractional label" true
    (try ignore (Dataset_io.of_csv "a,label\n1,0.5\n"); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "missing label column" true
    (try ignore (Dataset_io.of_csv "a,b\n1,2\n"); false
     with Invalid_argument _ -> true)

let test_csv_rejects_non_numeric () =
  Alcotest.(check bool) "text cell" true
    (try ignore (Dataset_io.of_csv "a,label\nfoo,0\n"); false
     with Invalid_argument _ -> true)

let test_csv_big_roundtrip () =
  let rng = Rng.create 1 in
  let d = Homunculus_netdata.Nslkdd.generate rng ~n:200 () in
  let back = Dataset_io.of_csv (Dataset_io.to_csv d) in
  Alcotest.(check bool) "value-exact" true (back.Dataset.x = d.Dataset.x)

(* Feature bindings *)

let test_builtin_coverage_for_all_datasets () =
  let check_schema names =
    let bindings = Feature_binding.for_features names in
    match Feature_binding.validate bindings ~feature_names:names with
    | Ok () -> ()
    | Error problems -> Alcotest.fail (String.concat "; " problems)
  in
  check_schema Homunculus_netdata.Nslkdd.feature_names;
  check_schema Homunculus_netdata.Iot.feature_names;
  check_schema (Homunculus_netdata.Botnet.feature_names Homunculus_netdata.Botnet.Fused)

let test_unknown_feature_flagged () =
  let bindings = Feature_binding.for_features [| "quantum_flux" |] in
  match Feature_binding.validate bindings ~feature_names:[| "quantum_flux" |] with
  | Error [ msg ] ->
      Alcotest.(check bool) "mentions feature" true
        (String.length msg > 0)
  | Ok () | Error _ -> Alcotest.fail "expected one unbound-feature problem"

let test_lookup () =
  let bindings = Feature_binding.for_features [| "ttl"; "frame_size" |] in
  (match Feature_binding.lookup bindings "ttl" with
  | Some { Feature_binding.source = Feature_binding.Header_field { header; field; _ }; _ } ->
      Alcotest.(check string) "header" "ipv4" header;
      Alcotest.(check string) "field" "ttl" field
  | _ -> Alcotest.fail "ttl should bind to a header field");
  Alcotest.(check bool) "missing lookup" true
    (Feature_binding.lookup bindings "nope" = None)

let test_histogram_bins_bind_to_registers () =
  let bindings = Feature_binding.for_features [| "pl_bin0"; "ipt_bin6" |] in
  List.iter
    (fun b ->
      match b.Feature_binding.source with
      | Feature_binding.Register _ -> ()
      | _ -> Alcotest.fail "histogram bins need stateful registers")
    bindings

let test_emit_p4_metadata () =
  let bindings = Feature_binding.for_features Homunculus_netdata.Iot.feature_names in
  let code = Feature_binding.emit_p4_metadata bindings in
  let has sub =
    let n = String.length code and m = String.length sub in
    let rec go i = i + m <= n && (String.sub code i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "action block" true (has "action extract_features()");
  Alcotest.(check bool) "header read" true (has "hdr.ipv4.ttl");
  Alcotest.(check bool) "register decl" true (has "register<bit<32>>(65536) last_seen_us");
  Alcotest.(check bool) "every feature keyed" true (has "meta.feature6_key")

let suite =
  [
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
    Alcotest.test_case "csv custom label column" `Quick test_csv_custom_label_column;
    Alcotest.test_case "csv rejects ragged" `Quick test_csv_rejects_ragged;
    Alcotest.test_case "csv rejects bad label" `Quick test_csv_rejects_bad_label;
    Alcotest.test_case "csv rejects non-numeric" `Quick test_csv_rejects_non_numeric;
    Alcotest.test_case "csv big roundtrip" `Quick test_csv_big_roundtrip;
    Alcotest.test_case "bindings cover datasets" `Quick test_builtin_coverage_for_all_datasets;
    Alcotest.test_case "unknown feature flagged" `Quick test_unknown_feature_flagged;
    Alcotest.test_case "binding lookup" `Quick test_lookup;
    Alcotest.test_case "histogram bins registers" `Quick test_histogram_bins_bind_to_registers;
    Alcotest.test_case "emit p4 metadata" `Quick test_emit_p4_metadata;
  ]
