(* Weight decay, learning-rate schedules, and report rendering edges. *)
open Homunculus_ml
module Rng = Homunculus_util.Rng
module Bo = Homunculus_bo

let test_weight_decay_shrinks_weights () =
  (* With zero gradients, decoupled decay shrinks parameters geometrically. *)
  let opt =
    Optimizer.create (Optimizer.sgd ~lr:0.1 ~weight_decay:1. ()) [| 2 |]
  in
  let params = [| [| 1.; -2. |] |] in
  Optimizer.step opt ~params ~grads:[| [| 0.; 0. |] |];
  Alcotest.(check (float 1e-9)) "shrunk +" 0.9 params.(0).(0);
  Alcotest.(check (float 1e-9)) "shrunk -" (-1.8) params.(0).(1)

let test_weight_decay_regularizes_training () =
  (* Strong decay keeps the weight norm visibly smaller. *)
  let blob rng n =
    let x =
      Array.init n (fun i ->
          let mu = if i mod 2 = 0 then -2. else 2. in
          [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])
    in
    Dataset.create ~x ~y:(Array.init n (fun i -> i mod 2)) ~n_classes:2 ()
  in
  let train_with wd =
    let m = Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[| 8 |] ~output_dim:2 () in
    let config =
      {
        Train.default_config with
        Train.epochs = 20;
        patience = None;
        optimizer = Optimizer.adam ~lr:1e-2 ~weight_decay:wd ();
      }
    in
    let _ = Train.fit (Rng.create 2) m config (blob (Rng.create 3) 200) in
    let norm = ref 0. in
    Array.iter
      (fun buf -> Array.iter (fun v -> norm := !norm +. (v *. v)) buf)
      (Mlp.parameter_buffers m);
    sqrt !norm
  in
  Alcotest.(check bool) "decay shrinks the model" true
    (train_with 0.3 < train_with 0.)

let test_set_learning_rate () =
  let opt = Optimizer.create (Optimizer.sgd ~lr:0.5 ()) [| 1 |] in
  Alcotest.(check (float 0.)) "initial" 0.5 (Optimizer.current_learning_rate opt);
  Optimizer.set_learning_rate opt 0.1;
  let params = [| [| 0. |] |] in
  Optimizer.step opt ~params ~grads:[| [| 1. |] |];
  Alcotest.(check (float 1e-9)) "uses live lr" (-0.1) params.(0).(0);
  Alcotest.check_raises "rejects non-positive"
    (Invalid_argument "Optimizer.set_learning_rate: non-positive rate")
    (fun () -> Optimizer.set_learning_rate opt 0.)

let test_lr_decay_schedule_applied () =
  (* After each epoch, lr is multiplied; training still works. *)
  let rng = Rng.create 4 in
  let x =
    Array.init 100 (fun i ->
        let mu = if i mod 2 = 0 then -2. else 2. in
        [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])
  in
  let d = Dataset.create ~x ~y:(Array.init 100 (fun i -> i mod 2)) ~n_classes:2 () in
  let m = Mlp.create (Rng.create 5) ~input_dim:2 ~hidden:[| 8 |] ~output_dim:2 () in
  let config =
    {
      Train.default_config with
      Train.epochs = 15;
      patience = None;
      optimizer = Optimizer.adam ~lr:2e-2 ();
      lr_decay_per_epoch = 0.8;
    }
  in
  let h = Train.fit (Rng.create 6) m config d in
  Alcotest.(check int) "ran" 15 h.Train.epochs_run;
  Alcotest.(check bool) "learned" true (Train.evaluate_f1 m d > 0.9)

(* Report edge cases *)

let test_render_regret_all_infeasible () =
  let h = Bo.History.create () in
  Bo.History.add h
    ~config:(Bo.Config.make [ ("x", Bo.Param.Int_value 1) ])
    ~objective:0.5 ~feasible:false ();
  Alcotest.(check string) "placeholder" "(no feasible evaluations)"
    (Homunculus_core.Report.render_regret h)

let test_render_regret_flat_curve () =
  let h = Bo.History.create () in
  for i = 1 to 5 do
    Bo.History.add h
      ~config:(Bo.Config.make [ ("x", Bo.Param.Int_value i) ])
      ~objective:0.5 ~feasible:true ()
  done;
  let plot = Homunculus_core.Report.render_regret h in
  Alcotest.(check bool) "renders despite zero span" true (String.length plot > 50)

let test_verdict_summary_mentions_feasibility () =
  let open Homunculus_backends in
  let v =
    Resource.check Resource.line_rate
      ~usages:[ Resource.usage ~resource:"CU" ~used:5. ~available:10. ]
      ~latency_ns:10. ~throughput_gpps:1.
  in
  let s = Homunculus_core.Report.verdict_summary v in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "FEASIBLE printed" true (has "FEASIBLE");
  Alcotest.(check bool) "usage printed" true (has "5 CU")

let suite =
  [
    Alcotest.test_case "weight decay shrinks" `Quick test_weight_decay_shrinks_weights;
    Alcotest.test_case "weight decay regularizes" `Quick test_weight_decay_regularizes_training;
    Alcotest.test_case "set learning rate" `Quick test_set_learning_rate;
    Alcotest.test_case "lr decay schedule" `Quick test_lr_decay_schedule_applied;
    Alcotest.test_case "regret all infeasible" `Quick test_render_regret_all_infeasible;
    Alcotest.test_case "regret flat curve" `Quick test_render_regret_flat_curve;
    Alcotest.test_case "verdict summary" `Quick test_verdict_summary_mentions_feasibility;
  ]
