open Homunculus_util

let feq = Alcotest.(check (float 1e-9))
let feq6 = Alcotest.(check (float 1e-6))

let test_mean () = feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])
let test_mean_single () = feq "singleton" 7. (Stats.mean [| 7. |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_variance () =
  feq "population variance" 1.25 (Stats.variance [| 1.; 2.; 3.; 4. |])

let test_variance_constant () = feq "constant" 0. (Stats.variance [| 3.; 3.; 3. |])

let test_std () = feq "std" 2. (Stats.std [| 2.; 2.; 6.; 6. |])

let test_min_max () =
  feq "min" (-2.) (Stats.min [| 3.; -2.; 5. |]);
  feq "max" 5. (Stats.max [| 3.; -2.; 5. |])

let test_sum () =
  feq "sum" 6. (Stats.sum [| 1.; 2.; 3. |]);
  feq "empty sum" 0. (Stats.sum [||])

let test_median_odd () = feq "odd" 3. (Stats.median [| 5.; 3.; 1. |])
let test_median_even () = feq "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_median_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  let _ = Stats.median xs in
  Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] xs

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  feq "p0" 1. (Stats.percentile xs 0.);
  feq "p100" 5. (Stats.percentile xs 100.);
  feq "p50" 3. (Stats.percentile xs 50.);
  feq "p25" 2. (Stats.percentile xs 25.)

let test_percentile_interpolates () =
  feq "p75 of pair" 1.75 (Stats.percentile [| 1.; 2. |] 75.)

let test_percentile_range () =
  Alcotest.check_raises "p>100"
    (Invalid_argument "Stats.percentile: p outside [0,100]") (fun () ->
      ignore (Stats.percentile [| 1. |] 101.))

let test_argmax_argmin () =
  Alcotest.(check int) "argmax" 2 (Stats.argmax [| 1.; 0.; 9.; 9. |]);
  Alcotest.(check int) "argmin" 1 (Stats.argmin [| 1.; 0.; 9. |])

let test_entropy_uniform () =
  feq6 "uniform over 4" (log 4.) (Stats.entropy [| 1.; 1.; 1.; 1. |])

let test_entropy_point_mass () = feq "point mass" 0. (Stats.entropy [| 0.; 5.; 0. |])

let test_entropy_scale_invariant () =
  feq6 "scale invariant"
    (Stats.entropy [| 1.; 3. |])
    (Stats.entropy [| 10.; 30. |])

let test_mutual_information_independent () =
  (* Product table: MI = 0. *)
  feq6 "independent" 0.
    (Stats.mutual_information [| [| 1.; 1. |]; [| 1.; 1. |] |])

let test_mutual_information_identity () =
  (* Perfectly dependent 2x2: MI = log 2. *)
  feq6 "identity" (log 2.)
    (Stats.mutual_information [| [| 1.; 0. |]; [| 0.; 1. |] |])

let test_pearson_perfect () =
  feq6 "positive" 1. (Stats.pearson [| 1.; 2.; 3. |] [| 2.; 4.; 6. |]);
  feq6 "negative" (-1.) (Stats.pearson [| 1.; 2.; 3. |] [| 3.; 2.; 1. |])

let test_pearson_constant () =
  feq "constant side" 0. (Stats.pearson [| 1.; 1.; 1. |] [| 1.; 2.; 3. |])

let test_normalize () =
  Alcotest.(check (array (float 1e-9))) "sums to one" [| 0.25; 0.75 |]
    (Stats.normalize [| 1.; 3. |]);
  Alcotest.(check (array (float 1e-9))) "all zero stays zero" [| 0.; 0. |]
    (Stats.normalize [| 0.; 0. |])

(* qcheck properties *)
let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.min xs -. 1e-9 && m <= Stats.max xs +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance non-negative" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs -> Stats.variance xs >= -1e-9)

let prop_entropy_nonneg =
  QCheck.Test.make ~name:"entropy non-negative and bounded by log n" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 20) (float_range 0. 10.))
    (fun xs ->
      let h = Stats.entropy xs in
      h >= -1e-9 && h <= log (float_of_int (Array.length xs)) +. 1e-6)

let prop_normalize_sums_to_one =
  QCheck.Test.make ~name:"normalize sums to 1 (or all-zero)" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 20) (float_range 0. 10.))
    (fun xs ->
      let total = Stats.sum (Stats.normalize xs) in
      Float.abs (total -. 1.) < 1e-9 || total = 0.)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean singleton" `Quick test_mean_single;
    Alcotest.test_case "mean empty" `Quick test_mean_empty;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "variance constant" `Quick test_variance_constant;
    Alcotest.test_case "std" `Quick test_std;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "sum" `Quick test_sum;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "median pure" `Quick test_median_does_not_mutate;
    Alcotest.test_case "percentile anchors" `Quick test_percentile;
    Alcotest.test_case "percentile interpolates" `Quick test_percentile_interpolates;
    Alcotest.test_case "percentile range" `Quick test_percentile_range;
    Alcotest.test_case "argmax/argmin" `Quick test_argmax_argmin;
    Alcotest.test_case "entropy uniform" `Quick test_entropy_uniform;
    Alcotest.test_case "entropy point mass" `Quick test_entropy_point_mass;
    Alcotest.test_case "entropy scale invariant" `Quick test_entropy_scale_invariant;
    Alcotest.test_case "MI independent" `Quick test_mutual_information_independent;
    Alcotest.test_case "MI identity" `Quick test_mutual_information_identity;
    Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
    Alcotest.test_case "pearson constant" `Quick test_pearson_constant;
    Alcotest.test_case "normalize" `Quick test_normalize;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
    QCheck_alcotest.to_alcotest prop_variance_nonneg;
    QCheck_alcotest.to_alcotest prop_entropy_nonneg;
    QCheck_alcotest.to_alcotest prop_normalize_sums_to_one;
  ]
