(* Pareto archives, flow-trace persistence, and Verilog emission. *)
open Homunculus_backends
open Homunculus_netdata
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng

(* Pareto *)

let test_pareto_add_and_evict () =
  let archive = Bo.Pareto.create ~n_objectives:2 in
  Alcotest.(check bool) "first accepted" true
    (Bo.Pareto.add archive ~objectives:[| 1.; 1. |] "a");
  Alcotest.(check bool) "dominated rejected" false
    (Bo.Pareto.add archive ~objectives:[| 0.5; 0.5 |] "b");
  Alcotest.(check bool) "duplicate rejected" false
    (Bo.Pareto.add archive ~objectives:[| 1.; 1. |] "c");
  Alcotest.(check bool) "incomparable accepted" true
    (Bo.Pareto.add archive ~objectives:[| 2.; 0.5 |] "d");
  Alcotest.(check int) "two on the front" 2 (Bo.Pareto.size archive);
  Alcotest.(check bool) "dominator evicts" true
    (Bo.Pareto.add archive ~objectives:[| 2.5; 1.5 |] "e");
  Alcotest.(check int) "front collapsed" 1 (Bo.Pareto.size archive)

let test_pareto_points_sorted () =
  let archive = Bo.Pareto.create ~n_objectives:2 in
  ignore (Bo.Pareto.add archive ~objectives:[| 1.; 3. |] "low-x");
  ignore (Bo.Pareto.add archive ~objectives:[| 3.; 1. |] "high-x");
  match Bo.Pareto.points archive with
  | [ (first, _); (second, _) ] ->
      Alcotest.(check (float 0.)) "descending x" 3. first.(0);
      Alcotest.(check (float 0.)) "then lower x" 1. second.(0)
  | _ -> Alcotest.fail "expected two points"

let test_pareto_dominates () =
  Alcotest.(check bool) "strict" true (Bo.Pareto.dominates [| 2.; 2. |] [| 1.; 2. |]);
  Alcotest.(check bool) "equal" false (Bo.Pareto.dominates [| 1.; 1. |] [| 1.; 1. |]);
  Alcotest.(check bool) "incomparable" false
    (Bo.Pareto.dominates [| 2.; 0. |] [| 0.; 2. |])

let test_hypervolume_known_values () =
  Alcotest.(check (float 1e-9)) "single rectangle" 12.
    (Bo.Pareto.hypervolume2 ~reference:[| 0.; 0. |] [ ([| 3.; 4. |], ()) ]);
  Alcotest.(check (float 1e-9)) "staircase union" 16.
    (Bo.Pareto.hypervolume2 ~reference:[| 0.; 0. |]
       [ ([| 3.; 4. |], ()); ([| 2.; 6. |], ()) ]);
  Alcotest.(check (float 1e-9)) "dominated adds nothing" 12.
    (Bo.Pareto.hypervolume2 ~reference:[| 0.; 0. |]
       [ ([| 3.; 4. |], ()); ([| 2.; 3. |], ()) ])

let test_hypervolume_grows_with_front () =
  let archive = Bo.Pareto.create ~n_objectives:2 in
  ignore (Bo.Pareto.add archive ~objectives:[| 3.; 1. |] ());
  let hv1 = Bo.Pareto.hypervolume archive ~reference:[| 0.; 0. |] in
  ignore (Bo.Pareto.add archive ~objectives:[| 1.; 3. |] ());
  let hv2 = Bo.Pareto.hypervolume archive ~reference:[| 0.; 0. |] in
  Alcotest.(check bool) "monotone" true (hv2 > hv1)

let test_hypervolume_validates () =
  Alcotest.check_raises "below reference"
    (Invalid_argument "Pareto.hypervolume2: point below the reference")
    (fun () ->
      ignore (Bo.Pareto.hypervolume2 ~reference:[| 0.; 0. |] [ ([| -1.; 1. |], ()) ]))

(* Trace *)

let test_trace_roundtrip () =
  let rng = Rng.create 1 in
  let flows =
    Flowsim.generate rng
      ~mix:{ Flowsim.n_flows = 25; botnet_frac = 0.4; max_packets = 60 }
      ()
  in
  let back = Trace.of_string (Trace.to_string flows) in
  Alcotest.(check int) "flow count" (Array.length flows) (Array.length back);
  Array.iteri
    (fun i f ->
      let g = back.(i) in
      Alcotest.(check int) "id" f.Flow.id g.Flow.id;
      Alcotest.(check string) "app" f.Flow.app g.Flow.app;
      Alcotest.(check bool) "label" true (f.Flow.label = g.Flow.label);
      Alcotest.(check int) "packets" (Flow.n_packets f) (Flow.n_packets g);
      Alcotest.(check int) "bytes" (Flow.total_bytes f) (Flow.total_bytes g))
    flows

let test_trace_file_roundtrip () =
  let rng = Rng.create 2 in
  let flows =
    Flowsim.generate rng
      ~mix:{ Flowsim.n_flows = 5; botnet_frac = 0.5; max_packets = 20 }
      ()
  in
  let path = Filename.temp_file "homunculus" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save ~path flows;
      let back = Trace.load ~path in
      Alcotest.(check int) "count" 5 (Array.length back))

let test_trace_features_survive () =
  (* Flowmarkers computed from a reloaded trace match the originals. *)
  let rng = Rng.create 3 in
  let flows =
    Flowsim.generate rng
      ~mix:{ Flowsim.n_flows = 10; botnet_frac = 0.5; max_packets = 40 }
      ()
  in
  let back = Trace.of_string (Trace.to_string flows) in
  Array.iteri
    (fun i f ->
      let a = Botnet.flow_features Botnet.Fused f () in
      let b = Botnet.flow_features Botnet.Fused back.(i) () in
      Alcotest.(check bool) "same flowmarker" true
        (Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b))
    flows

let test_trace_rejects_malformed () =
  let rejects s =
    try
      ignore (Trace.of_string s);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "missing header" true (rejects "flow 1 benign x 1\n0 1\n");
  Alcotest.(check bool) "bad label" true
    (rejects "# homunculus-trace v1\nflow 1 evil x 1\n0.0 10\n");
  Alcotest.(check bool) "truncated" true
    (rejects "# homunculus-trace v1\nflow 1 benign x 5\n0.0 10\n");
  Alcotest.(check bool) "bad packet" true
    (rejects "# homunculus-trace v1\nflow 1 benign x 1\nnot a packet\n")

(* Verilog *)

let layer n_in n_out act =
  {
    Model_ir.n_in;
    n_out;
    activation = act;
    weights = Array.make_matrix n_out n_in 0.5;
    biases = Array.make n_out (-0.25);
  }

let dnn = Model_ir.Dnn { name = "ad"; layers = [| layer 3 4 "relu"; layer 4 2 "linear" |] }

let has code sub =
  let n = String.length code and m = String.length sub in
  let rec go i = i + m <= n && (String.sub code i m = sub || go (i + 1)) in
  go 0

let test_verilog_quantize () =
  Alcotest.(check int) "one" 65536 (Verilog.quantize 1.);
  Alcotest.(check int) "half" 32768 (Verilog.quantize 0.5);
  Alcotest.(check int) "negative" (-16384) (Verilog.quantize (-0.25));
  Alcotest.(check int) "clamps" 2147483647 (Verilog.quantize 1e9)

let test_verilog_structure () =
  let rtl = Verilog.emit dnn in
  Alcotest.(check int) "two layers + top" 3 (Verilog.module_count rtl);
  Alcotest.(check bool) "timescale" true (has rtl "`timescale 1ns/1ps");
  Alcotest.(check bool) "clocked" true (has rtl "always @(posedge clk)");
  Alcotest.(check bool) "valid handshake" true (has rtl "out_valid <= in_valid");
  Alcotest.(check bool) "relu mux" true (has rtl "acc_sat[31] ? 32'sd0 : acc_sat");
  Alcotest.(check bool) "top chains stages" true (has rtl "ad_layer1 u1");
  let count sub =
    let rec go i acc =
      if i + String.length sub > String.length rtl then acc
      else if String.sub rtl i (String.length sub) = sub then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "endmodule per module" (Verilog.module_count rtl)
    (count "endmodule")

let test_verilog_weights_embedded () =
  let rtl = Verilog.emit dnn in
  (* 0.5 in Q16.16 = 0x00008000; -0.25 = 0xffffc000. *)
  Alcotest.(check bool) "weight rom" true (has rtl "32'sh00008000");
  Alcotest.(check bool) "bias rom" true (has rtl "32'shffffc000")

let test_verilog_rejects_classical () =
  Alcotest.check_raises "kmeans"
    (Invalid_argument "Verilog.emit: only DNNs take the FPGA RTL path")
    (fun () ->
      ignore (Verilog.emit (Model_ir.Kmeans { name = "k"; centroids = [| [| 0. |] |] })))

let suite =
  [
    Alcotest.test_case "pareto add/evict" `Quick test_pareto_add_and_evict;
    Alcotest.test_case "pareto sorted" `Quick test_pareto_points_sorted;
    Alcotest.test_case "pareto dominates" `Quick test_pareto_dominates;
    Alcotest.test_case "hypervolume values" `Quick test_hypervolume_known_values;
    Alcotest.test_case "hypervolume monotone" `Quick test_hypervolume_grows_with_front;
    Alcotest.test_case "hypervolume validates" `Quick test_hypervolume_validates;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip;
    Alcotest.test_case "trace preserves features" `Quick test_trace_features_survive;
    Alcotest.test_case "trace rejects malformed" `Quick test_trace_rejects_malformed;
    Alcotest.test_case "verilog quantize" `Quick test_verilog_quantize;
    Alcotest.test_case "verilog structure" `Quick test_verilog_structure;
    Alcotest.test_case "verilog weights" `Quick test_verilog_weights_embedded;
    Alcotest.test_case "verilog rejects classical" `Quick test_verilog_rejects_classical;
  ]
