(* Microbursts and reaction time (the paper's introduction motivates
   in-network ML with "short-lived traffic bursts lasting a few
   microseconds").

   This example drives a compiled anomaly-detection pipeline with a traffic
   trace containing a microburst: steady 0.5 Gpkt/s load with a 5 us burst
   at full line rate. A model mapped at II = 1 rides the burst out with
   bounded queueing; a model that only achieves II = 2 (because it is
   too big for the grid and must time-multiplex) can serve the steady load
   but drops packets exactly when the network most needs its verdicts.

   Run with: dune exec examples/microburst.exe *)

open Homunculus_backends
module Rng = Homunculus_util.Rng

let burst_trace () =
  (* 30 us steady at 0.5 Gpkt/s, a 5 us burst at 1 Gpkt/s, then steady. *)
  let arrivals = ref [] in
  let t = ref 0. in
  let push gap n =
    for _ = 1 to n do
      t := !t +. gap;
      arrivals := !t :: !arrivals
    done
  in
  push 2.0 15000;
  (* steady: one packet every 2 ns *)
  push 1.0 5000;
  (* microburst: line rate for 5 us *)
  push 2.0 15000;
  Array.of_list (List.rev !arrivals)

let run ~label config trace =
  let s = Pipeline_sim.simulate config ~arrivals_ns:trace in
  Printf.printf
    "%-22s delivered %.3f Gpkt/s, mean %6.1f ns, p99 %6.1f ns, drops %5d, \
     max queue %3d\n"
    label s.Pipeline_sim.achieved_gpps s.Pipeline_sim.mean_latency_ns
    s.Pipeline_sim.p99_latency_ns s.Pipeline_sim.packets_dropped
    s.Pipeline_sim.max_queue_depth

let () =
  let grid = Taurus.default_grid in
  (* A compact AD-sized DNN that maps at II = 1. *)
  let layer n_in n_out activation =
    {
      Model_ir.n_in;
      n_out;
      activation;
      weights = Array.make_matrix n_out n_in 0.05;
      biases = Array.make n_out 0.;
    }
  in
  let compact =
    Model_ir.Dnn
      { name = "ad"; layers = [| layer 7 12 "relu"; layer 12 8 "relu"; layer 8 2 "linear" |] }
  in
  (* An oversized model that the grid can only run time-multiplexed. *)
  let oversized =
    Model_ir.Dnn
      {
        name = "ad_big";
        layers = [| layer 7 48 "relu"; layer 48 48 "relu"; layer 48 2 "linear" |];
      }
  in
  let trace = burst_trace () in
  Printf.printf
    "trace: 35k packets, steady 0.5 Gpkt/s with a 5 us line-rate microburst\n\n";
  List.iter
    (fun (label, model) ->
      let mapping = Taurus.map_model grid model in
      let config = Pipeline_sim.config_of_mapping grid mapping in
      Printf.printf "%-22s II=%d, %d CUs\n" label mapping.Taurus.ii mapping.Taurus.cus;
      run ~label:"  under burst trace:" config trace)
    [ ("compact (fits II=1)", compact); ("oversized (II>1)", oversized) ];
  Printf.printf
    "\nthe feasibility constraint Homunculus enforces (II = 1 at the line\n\
     rate) is exactly what keeps verdicts flowing through the burst — the\n\
     oversized model is the one the optimizer rejects as infeasible.\n"
