(* Traffic classification on a MAT-based switch (the paper's §5.2.2 setup).

   Homunculus searches a KMeans clustering of IoT device traffic and maps it
   onto match-action tables via the IIsy backend — one MAT per cluster. When
   the switch offers fewer tables, the compiler trades fidelity for fit by
   generating coarser clusterings (Fig. 7).

   Run with: dune exec examples/traffic_classification.exe *)

open Homunculus_alchemy
open Homunculus_core
module Rng = Homunculus_util.Rng
module Iot = Homunculus_netdata.Iot
module Resource = Homunculus_backends.Resource
module Tofino = Homunculus_backends.Tofino

let () =
  let loader () =
    let rng = Rng.create 21 in
    let train, test = Iot.generate_split rng ~n_train:2000 ~n_test:800 () in
    Model_spec.data ~train ~test
  in
  let tc =
    Model_spec.make ~name:"traffic_classification" ~metric:Model_spec.V_measure
      ~algorithms:[ Model_spec.Kmeans ] ~loader ()
  in
  Printf.printf "device classes: %s\n\n"
    (String.concat ", " (Array.to_list Iot.class_names));
  (* Sweep the MAT budget from 5 tables down to 2 (Fig. 7's K5..K2). *)
  List.iter
    (fun budget ->
      let platform = Platform.with_tables (Platform.tofino ()) budget in
      let result =
        Compiler.generate ~options:Compiler.quick_options platform
          (Schedule.model tc)
      in
      match result.Compiler.models with
      | [ m ] ->
          let a = m.Compiler.artifact in
          Printf.printf "K%d: v-measure %.1f, %d MATs, %s\n" budget
            (100. *. a.Evaluator.objective)
            (Tofino.mats_used a.Evaluator.verdict)
            (if a.Evaluator.verdict.Resource.feasible then "fits"
             else "does not fit")
      | _ -> assert false)
    [ 5; 4; 3; 2 ];
  (* Show the P4 program generated for the smallest budget. *)
  let platform = Platform.with_tables (Platform.tofino ()) 3 in
  let result =
    Compiler.generate ~options:Compiler.quick_options platform (Schedule.model tc)
  in
  (match result.Compiler.models with
  | [ { Compiler.code = Some code; _ } ] ->
      let lines = String.split_on_char '\n' code in
      let preview = List.filteri (fun i _ -> i < 20) lines in
      Printf.printf "\ngenerated P4 (first 20 lines of %d):\n%s\n"
        (List.length lines)
        (String.concat "\n" preview)
  | _ -> ());
  print_newline ()
