(* Quickstart: the paper's Fig. 3 anomaly-detection pipeline, end to end.

   A network operator writes three things: a data loader, a model spec
   (objective only — no architecture), and a platform with constraints.
   [Compiler.generate] does the rest: candidate filtering, BO-guided
   design-space exploration, training, feasibility checking against the
   Taurus resource model, and Spatial code generation.

   Run with: dune exec examples/quickstart.exe *)

open Homunculus_alchemy
open Homunculus_core
module Rng = Homunculus_util.Rng
module Nslkdd = Homunculus_netdata.Nslkdd

let () =
  (* 0. Materialize train_ad.csv / test_ad.csv, the files the paper's Fig. 3
     loads. (A real deployment starts from captured traces; here the
     synthetic generator stands in for the capture pipeline.) *)
  let dir = Filename.temp_file "homunculus_quickstart" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let train_csv = Filename.concat dir "train_ad.csv" in
  let test_csv = Filename.concat dir "test_ad.csv" in
  let rng = Rng.create 7 in
  let train0, test0 = Nslkdd.generate_split rng ~n_train:2000 ~n_test:800 () in
  Homunculus_ml.Dataset_io.save ~path:train_csv train0;
  Homunculus_ml.Dataset_io.save ~path:test_csv test0;

  (* 1. @DataLoader: load and preprocess the training data from disk, as in
     Fig. 3's ad_loader.load_from_file("train_ad.csv"). *)
  let loader () =
    let train = Homunculus_ml.Dataset_io.load train_csv in
    let test = Homunculus_ml.Dataset_io.load test_csv in
    Model_spec.data ~train ~test
  in

  (* 2. Model: objective metric and algorithm shortlist. *)
  let anomaly_detection =
    Model_spec.make ~name:"anomaly_detection" ~metric:Model_spec.F1
      ~algorithms:[ Model_spec.Dnn ] ~loader ()
  in

  (* 3. Platform: a 16x16 Taurus grid constrained to 1 Gpkt/s @ 500 ns. *)
  let platform =
    Platform.taurus ()
    |> fun p -> Platform.constrain p ~min_throughput_gpps:1. ~max_latency_ns:500. ()
  in

  (* 4. Schedule the single model and generate. *)
  let result =
    Compiler.generate ~options:Compiler.quick_options platform
      (Schedule.model anomaly_detection)
  in

  print_string (Report.result_summary result);
  match result.Compiler.models with
  | [ m ] ->
      Printf.printf "\nwinning configuration:\n  %s\n"
        (Report.config_summary m.Compiler.artifact.Evaluator.config);
      Printf.printf "\nsearch regret (best F1%% so far per iteration):\n%s\n"
        (Report.render_regret m.Compiler.history);
      (match m.Compiler.code with
      | Some code ->
          let lines = String.split_on_char '\n' code in
          let preview = List.filteri (fun i _ -> i < 25) lines in
          Printf.printf "generated Spatial (first 25 lines of %d):\n%s\n"
            (List.length lines)
            (String.concat "\n" preview)
      | None -> ())
  | _ -> assert false
