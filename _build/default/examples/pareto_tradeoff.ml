(* Multi-objective search: accuracy vs. resource footprint.

   The paper frames Homunculus's DSE as constrained single-objective
   optimization, but notes (§6) that "multi-objective optimization is a
   crucial matter because real-world applications often rely on a trade-off
   between several objectives" — exactly the trade Table 5 surfaces, where
   the higher-F1 generated models burn more LUTs and watts. This example
   runs the compiler's random-scalarization mode and prints the resulting
   accuracy-vs-footprint Pareto front with its hypervolume.

   Run with: dune exec examples/pareto_tradeoff.exe *)

open Homunculus_alchemy
open Homunculus_core
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng
module Nslkdd = Homunculus_netdata.Nslkdd

let () =
  let spec =
    Model_spec.make ~name:"anomaly_detection" ~algorithms:[ Model_spec.Dnn ]
      ~loader:(fun () ->
        let rng = Rng.create 11 in
        let train, test = Nslkdd.generate_split rng ~n_train:1500 ~n_test:600 () in
        Model_spec.data ~train ~test)
      ()
  in
  let platform = Platform.taurus () in
  let points =
    Compiler.search_tradeoff ~options:Compiler.quick_options ~n_scalarizations:5
      platform spec
  in
  Printf.printf "%-8s %10s %8s %8s %8s\n" "F1" "grid use" "params" "CUs" "weight";
  List.iter
    (fun p ->
      let a = p.Compiler.artifact in
      Printf.printf "%-8.2f %9.0f%% %8d %8d %8.2f\n"
        (100. *. a.Evaluator.objective)
        (100. *. p.Compiler.resource_fraction)
        (Homunculus_backends.Model_ir.param_count a.Evaluator.model_ir)
        (Homunculus_backends.Taurus.cus_used a.Evaluator.verdict)
        p.Compiler.weight)
    points;
  let front =
    List.map
      (fun p ->
        ( [| p.Compiler.artifact.Evaluator.objective;
             1. -. p.Compiler.resource_fraction |],
          () ))
      points
  in
  Printf.printf "\n%d non-dominated points; hypervolume %.4f\n"
    (List.length points)
    (Bo.Pareto.hypervolume2 ~reference:[| 0.; 0. |] front);
  Printf.printf
    "read: the top row is \"accuracy at any cost\" (the Table 2 winner);\n\
     rows below it trade a little F1 for a lighter, cooler pipeline (the\n\
     Table 5 power story).\n"
