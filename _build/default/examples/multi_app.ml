(* Multi-application scheduling and model fusion (paper §5.1.3).

   Alchemy's compositional operators place several models on one switch:
   sequentially ([>>>], the paper's [>]) or in parallel ([|||], the paper's
   [|]). The compiler checks the whole pipeline's resource/latency/throughput
   budget, and — when two parallel models learn from overlapping feature
   sets — fuses them into one model, roughly halving the resource bill
   (Table 4).

   Run with: dune exec examples/multi_app.exe *)

open Homunculus_alchemy
open Homunculus_core
module Rng = Homunculus_util.Rng
module Nslkdd = Homunculus_netdata.Nslkdd
module Resource = Homunculus_backends.Resource

let ad_spec name seed =
  Model_spec.make ~name ~metric:Model_spec.F1 ~algorithms:[ Model_spec.Dnn ]
    ~loader:(fun () ->
      let rng = Rng.create seed in
      let train, test = Nslkdd.generate_split rng ~n_train:1200 ~n_test:500 () in
      Model_spec.data ~train ~test)
    ()

let show_schedule title platform schedule =
  let result = Compiler.generate ~options:Compiler.quick_options platform schedule in
  Printf.printf "%-28s %s\n  pipeline: %s\n" title
    (Schedule.to_string result.Compiler.schedule)
    (Report.verdict_summary result.Compiler.combined.Schedule.verdict);
  result

let () =
  let platform = Platform.taurus () in
  let ad = ad_spec "ad" 50 in

  (* Table 3: chaining strategies for four copies of the AD model. All three
     use identical resources — only latency differs with pipeline depth. *)
  print_endline "== App chaining (Table 3) ==";
  let m () = Schedule.model ad in
  let _ = show_schedule "4x sequential" platform Schedule.(m () >>> m () >>> m () >>> m ()) in
  let _ = show_schedule "4x parallel" platform Schedule.(m () ||| m () ||| m () ||| m ()) in
  let _ =
    show_schedule "mixed" platform Schedule.(m () >>> (m () ||| m ()) >>> m ())
  in

  (* Table 4: split the AD dataset into two specs sharing the feature
     schema, then let the fusion pass merge them. *)
  print_endline "\n== Model fusion (Table 4) ==";
  let part1 = ad_spec "ad_part1" 51 in
  let part2 = ad_spec "ad_part2" 52 in
  let unfused =
    show_schedule "two separate models" platform Schedule.(model part1 ||| model part2)
  in
  let options = { Compiler.quick_options with Compiler.fusion_threshold = Some 0.5 } in
  let fused =
    Compiler.generate ~options platform Schedule.(model part1 ||| model part2)
  in
  Printf.printf "%-28s %s\n  pipeline: %s\n" "fused by Homunculus"
    (Schedule.to_string fused.Compiler.schedule)
    (Report.verdict_summary fused.Compiler.combined.Schedule.verdict);
  let cus v =
    match Resource.find_usage v "CU" with
    | Some u -> u.Resource.used
    | None -> 0.
  in
  Printf.printf
    "\nfusion saves %.0f%% of the compute units by sharing learned weights.\n"
    (100.
    *. (1.
       -. cus fused.Compiler.combined.Schedule.verdict
          /. cus unfused.Compiler.combined.Schedule.verdict));
  (* The compiler also emits one Spatial program hosting both instances. *)
  match unfused.Compiler.bundle_code with
  | Some code ->
      Printf.printf
        "\nbundled Spatial program for the unfused pair: %d lines (instances: %s)\n"
        (Homunculus_backends.Spatial.line_count code)
        (String.concat ", "
           (List.filter_map
              (fun line ->
                let marker = "// === instance " in
                let ml = String.length marker in
                let line = String.trim line in
                if String.length line > ml && String.sub line 0 ml = marker then
                  Some (String.sub line ml (String.length line - ml - 4))
                else None)
              (String.split_on_char '\n' code)))
  | None -> ()
