examples/quickstart.ml: Compiler Evaluator Filename Homunculus_alchemy Homunculus_core Homunculus_ml Homunculus_netdata Homunculus_util List Model_spec Platform Printf Report Schedule String Sys
