examples/multi_app.mli:
