examples/microburst.ml: Array Homunculus_backends Homunculus_util List Model_ir Pipeline_sim Printf Taurus
