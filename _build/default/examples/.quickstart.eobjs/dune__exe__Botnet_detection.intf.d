examples/botnet_detection.mli:
