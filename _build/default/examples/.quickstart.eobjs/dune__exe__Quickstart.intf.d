examples/quickstart.mli:
