examples/deployment.mli:
