examples/pareto_tradeoff.mli:
