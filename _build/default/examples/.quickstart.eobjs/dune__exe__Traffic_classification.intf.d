examples/traffic_classification.mli:
