examples/microburst.mli:
