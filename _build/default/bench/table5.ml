(* Table 5: FPGA testbed resource consumption and power (paper §5.2.1).

   The six Table 2 models are mapped onto the Alveo U250 model; the shell
   (loopback) row anchors the calibration. Paper's rows:

     Loopback  5.36 / 3.64 / 4.15 / 15.131 W
     Base-AD   6.55 / 4.30 / 4.15 / 16.969     Hom-AD  6.61 / 4.43 / 4.15 / 17.440
     Base-TC   6.69 / 4.48 / 4.15 / 17.553     Hom-TC  7.48 / 4.77 / 4.15 / 18.405
     Base-BD   7.29 / 4.68 / 4.15 / 17.807     Hom-BD  6.72 / 4.49 / 4.15 / 17.309 *)

open Homunculus_backends

let paper_rows =
  [
    ("Loopback", (5.36, 3.64, 4.15, 15.131));
    ("Base-AD", (6.55, 4.30, 4.15, 16.969));
    ("Hom-AD", (6.61, 4.43, 4.15, 17.440));
    ("Base-TC", (6.69, 4.48, 4.15, 17.553));
    ("Hom-TC", (7.48, 4.77, 4.15, 18.405));
    ("Base-BD", (7.29, 4.68, 4.15, 17.807));
    ("Hom-BD", (6.72, 4.49, 4.15, 17.309));
  ]

let run () =
  Bench_config.section "Table 5: FPGA resource utilization and power";
  let device = Fpga.alveo_u250 in
  let a = Table2.compute () in
  let labeled_models =
    List.combine [ "Base-AD"; "Base-TC"; "Base-BD" ] a.Table2.baseline_models
    @ List.combine [ "Hom-AD"; "Hom-TC"; "Hom-BD" ] a.Table2.generated_models
  in
  let order = [ "Base-AD"; "Hom-AD"; "Base-TC"; "Hom-TC"; "Base-BD"; "Hom-BD" ] in
  Printf.printf "%-10s %7s %7s %7s %10s   %s\n" "Model" "LUT%" "FF%" "BRAM%"
    "Power(W)" "(paper LUT% / W)";
  let print label (r : Fpga.report) =
    let paper =
      match List.assoc_opt label paper_rows with
      | Some (lut, _, _, w) -> Printf.sprintf "(%.2f / %.3f)" lut w
      | None -> ""
    in
    Printf.printf "%-10s %7.2f %7.2f %7.2f %10.3f   %s\n" label r.Fpga.lut_pct
      r.Fpga.ff_pct r.Fpga.bram_pct r.Fpga.power_w paper
  in
  print "Loopback" (Fpga.loopback_report device);
  List.iter
    (fun label ->
      let model = List.assoc label labeled_models in
      print label (Fpga.report device model))
    order;
  (* Shape checks the paper highlights. *)
  let report label = Fpga.report device (List.assoc label labeled_models) in
  let loopback = Fpga.loopback_report device in
  let all_above_shell =
    List.for_all (fun l -> (report l).Fpga.power_w > loopback.Fpga.power_w) order
  in
  Printf.printf "  every model burns more power than loopback: %b\n" all_above_shell;
  let bram_constant =
    List.for_all (fun l -> (report l).Fpga.bram_pct = loopback.Fpga.bram_pct) order
  in
  Printf.printf "  BRAM%% constant across models (weights live in LUTs): %b\n"
    bram_constant
