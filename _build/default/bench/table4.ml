(* Table 4: model fusion (paper §3.2.5, §5.1.3).

   The AD dataset is split into two halves, each given to its own model;
   mapped separately they would each claim half the switch. Because the two
   halves share the feature schema, Homunculus fuses them into one model
   that serves both datasets with roughly the resources of a single part —
   cutting usage by ~2x versus deploying both.

   Paper's rows (PCUs / PMUs): Part 1 44/81, Part 2 51/96, Fused 48/83. *)

open Homunculus_alchemy
open Homunculus_backends
open Homunculus_core
module Rng = Homunculus_util.Rng
module Dataset = Homunculus_ml.Dataset

let half_spec name which =
  Model_spec.make ~name ~metric:Model_spec.F1 ~algorithms:[ Model_spec.Dnn ]
    ~loader:(fun () ->
      let data = Model_spec.load (Apps.ad_spec ()) in
      let split (d : Dataset.t) =
        let n = Dataset.n_samples d in
        let idx =
          Array.init (n / 2) (fun i -> if which = `First then i else (n / 2) + i)
        in
        Dataset.subset d idx
      in
      Model_spec.data
        ~train:(split data.Model_spec.train)
        ~test:(split data.Model_spec.test))
    ()

let row label (result : Compiler.model_result) =
  let a = result.Compiler.artifact in
  (label, Taurus.cus_used a.Evaluator.verdict, Taurus.mus_used a.Evaluator.verdict,
   100. *. a.Evaluator.objective)

let run () =
  Bench_config.section "Table 4: model fusion resource usage";
  let part1 = half_spec "AD_part1" `First in
  let part2 = half_spec "AD_part2" `Second in
  (* Each split model gets half the switch (paper: "they are each allocated
     half of the switch's resources"); the fused model gets the whole. *)
  let half_platform = Platform.with_resources (Platform.taurus ()) ~rows:16 ~cols:8 in
  let r1 = Compiler.search_model ~options:Bench_config.search_options half_platform part1 in
  let r2 = Compiler.search_model ~options:Bench_config.search_options half_platform part2 in
  (* The fused model replaces one part in its half-switch slot and simply
     also serves the other dataset — that is the whole point of fusion. *)
  let fused_spec = Fusion.fuse ~name:"AD_fused" part1 part2 in
  let rf =
    Compiler.search_model ~options:Bench_config.search_options half_platform fused_spec
  in
  let rows =
    [ row "AD: Part 1" r1; row "AD: Part 2" r2; row "AD: Fused" rf ]
  in
  Printf.printf "%-12s %6s %6s %8s\n" "Application" "PCUs" "PMUs" "F1";
  List.iter
    (fun (l, cu, mu, f1) -> Printf.printf "%-12s %6d %6d %8.2f\n" l cu mu f1)
    rows;
  let get i = List.nth rows i in
  let _, cu1, mu1, _ = get 0 and _, cu2, mu2, _ = get 1 and _, cuf, muf, _ = get 2 in
  let sum_parts = cu1 + cu2 + mu1 + mu2 in
  let fused_total = cuf + muf in
  Printf.printf
    "  fused model uses %d units vs %d for both parts (%.0f%% saving)\n"
    fused_total sum_parts
    (100. *. (1. -. (float_of_int fused_total /. float_of_int sum_parts)));
  Printf.printf
    "  [paper: fused ~= a single part, i.e. ~50%% of deploying both]\n"
