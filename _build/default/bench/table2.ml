(* Table 2: hand-tuned baselines vs Homunculus-generated models for AD, TC,
   and BD on the Taurus backend — #params, F1 score, CU and MU usage.

   Paper's rows (features / params / F1 / CUs / MUs):
     Base-AD 7/203/71.10/24/48     Hom-AD 7/254/83.10/41/67
     Base-TC 7/275/61.04/31/59     Hom-TC 7/370/68.75/54/97
     Base-BD 30/662/77.0/167/45    Hom-BD 30/501/79.8/53/151 *)

open Homunculus_alchemy
open Homunculus_backends
open Homunculus_core

type row = {
  label : string;
  features : int;
  params : int;
  f1 : float;
  cus : int;
  mus : int;
}

type artifacts = {
  rows : row list;
  baseline_models : Model_ir.t list;
  generated_models : Model_ir.t list;
  histories : (string * Homunculus_bo.History.t) list;
}

let platform = Platform.taurus ()

let baseline_row (b : Baselines.result) =
  let verdict = Platform.estimate platform b.Baselines.model_ir in
  {
    label = b.Baselines.name;
    features = Model_ir.input_dim b.Baselines.model_ir;
    params = b.Baselines.params;
    f1 = 100. *. b.Baselines.f1;
    cus = Taurus.cus_used verdict;
    mus = Taurus.mus_used verdict;
  }

let generated_row name (r : Compiler.model_result) =
  let a = r.Compiler.artifact in
  {
    label = name;
    features = Model_ir.input_dim a.Evaluator.model_ir;
    params = Model_ir.param_count a.Evaluator.model_ir;
    f1 = 100. *. a.Evaluator.objective;
    cus = Taurus.cus_used a.Evaluator.verdict;
    mus = Taurus.mus_used a.Evaluator.verdict;
  }

let compute =
  Apps.memo (fun () ->
      let specs =
        [
          ("Hom-AD", Apps.ad_spec (), Baselines.ad);
          ("Hom-TC", Apps.tc_spec (), Baselines.tc);
          ("Hom-BD", Apps.bd_spec (), Baselines.bd);
        ]
      in
      let results =
        List.map
          (fun (label, spec, baseline) ->
            let b = baseline () in
            let r =
              Compiler.search_model ~options:Bench_config.search_options
                platform spec
            in
            (label, b, r))
          specs
      in
      let rows =
        List.concat_map
          (fun (label, b, r) -> [ baseline_row b; generated_row label r ])
          results
      in
      {
        rows;
        baseline_models = List.map (fun (_, b, _) -> b.Baselines.model_ir) results;
        generated_models =
          List.map
            (fun (_, _, (r : Compiler.model_result)) ->
              r.Compiler.artifact.Evaluator.model_ir)
            results;
        histories =
          List.map (fun (label, _, r) -> (label, r.Compiler.history)) results;
      })

let paper_reference =
  [
    ("Base-AD", 71.10); ("Hom-AD", 83.10); ("Base-TC", 61.04);
    ("Hom-TC", 68.75); ("Base-BD", 77.0); ("Hom-BD", 79.8);
  ]

let run () =
  Bench_config.section "Table 2: baselines vs Homunculus-generated models";
  let a = compute () in
  Printf.printf "%-10s %9s %8s %8s %6s %6s %10s\n" "Model" "Features" "Params"
    "F1" "CUs" "MUs" "(paper F1)";
  List.iter
    (fun r ->
      let paper =
        match List.assoc_opt r.label paper_reference with
        | Some v -> Printf.sprintf "%10.2f" v
        | None -> "         -"
      in
      Printf.printf "%-10s %9d %8d %8.2f %6d %6d %s\n" r.label r.features
        r.params r.f1 r.cus r.mus paper)
    a.rows;
  (* The claims that must hold: Homunculus beats each baseline's F1 while
     remaining feasible. *)
  let pairs = [ ("Base-AD", "Hom-AD"); ("Base-TC", "Hom-TC"); ("Base-BD", "Hom-BD") ] in
  List.iter
    (fun (b, h) ->
      let find l = List.find (fun r -> r.label = l) a.rows in
      let rb = find b and rh = find h in
      Printf.printf "  %s %+.2f F1 vs %s %s\n" h (rh.f1 -. rb.f1) b
        (if rh.f1 > rb.f1 then "[improves, as in paper]" else "[NO IMPROVEMENT]"))
    pairs
