(* Ablations of the design choices DESIGN.md calls out:
   1. BO (RF surrogate + EI + feasibility weighting) vs pure random search
      at the same evaluation budget — the value of the surrogate.
   2. Feasibility-aware candidate pool vs ignoring feasibility — the value
      of encoding resources as constraints (paper §3.2.2).
   3. Local-search exploitation fraction — the incumbent-refinement pool. *)

open Homunculus_alchemy
open Homunculus_core
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng

let budget settings = settings.Bo.Optimizer.n_init + settings.Bo.Optimizer.n_iter

let best_feasible history =
  match Bo.History.best history with
  | Some e -> e.Bo.History.objective
  | None -> Float.nan

let run () =
  Bench_config.section "Ablation: search strategy on the AD design space";
  let platform = Platform.taurus () in
  let spec = Apps.ad_spec () in
  let settings = Bench_config.search_options.Compiler.bo_settings in
  let space =
    Space_builder.build platform Model_spec.Dnn
      ~input_dim:
        (Homunculus_ml.Dataset.n_features
           (Model_spec.load spec).Model_spec.train)
  in
  let eval rng config =
    Evaluator.to_bo_evaluation
      (Evaluator.evaluate rng platform spec Model_spec.Dnn config)
  in

  (* 1. BO vs random search, same budget, same seed. *)
  let bo_rng = Rng.create 71 in
  let bo_history =
    Bo.Optimizer.maximize bo_rng ~settings space ~f:(eval (Rng.create 72))
  in
  let rs_rng = Rng.create 71 in
  let rs_history =
    Bo.Optimizer.random_search rs_rng ~n:(budget settings) space
      ~f:(eval (Rng.create 72))
  in
  Printf.printf "budget %d evals:\n" (budget settings);
  Printf.printf "  %-28s best F1 %.4f (feasible frac %.2f)\n" "BO (RF + EI + feas)"
    (best_feasible bo_history)
    (Bo.History.feasible_fraction bo_history);
  Printf.printf "  %-28s best F1 %.4f (feasible frac %.2f)\n" "random search"
    (best_feasible rs_history)
    (Bo.History.feasible_fraction rs_history);

  (* 2. Feasibility pressure: shrink the grid so much of the space is
     infeasible and compare how often each strategy wastes an evaluation. *)
  let tiny = Platform.with_resources platform ~rows:8 ~cols:8 in
  let tiny_space =
    Space_builder.build tiny Model_spec.Dnn
      ~input_dim:
        (Homunculus_ml.Dataset.n_features
           (Model_spec.load spec).Model_spec.train)
  in
  let tiny_eval rng config =
    Evaluator.to_bo_evaluation
      (Evaluator.evaluate rng tiny spec Model_spec.Dnn config)
  in
  let bo_tiny =
    Bo.Optimizer.maximize (Rng.create 73) ~settings tiny_space
      ~f:(tiny_eval (Rng.create 74))
  in
  let rs_tiny =
    Bo.Optimizer.random_search (Rng.create 73) ~n:(budget settings) tiny_space
      ~f:(tiny_eval (Rng.create 74))
  in
  Printf.printf "\n8x8 grid (feasibility-constrained space):\n";
  Printf.printf "  %-28s feasible evals %.0f%%, best F1 %.4f\n" "BO"
    (100. *. Bo.History.feasible_fraction bo_tiny)
    (best_feasible bo_tiny);
  Printf.printf "  %-28s feasible evals %.0f%%, best F1 %.4f\n" "random search"
    (100. *. Bo.History.feasible_fraction rs_tiny)
    (best_feasible rs_tiny);

  (* 3. Exploitation (local neighborhood) fraction. *)
  Printf.printf "\nlocal-search fraction (exploit vs explore):\n";
  List.iter
    (fun frac ->
      let s = { settings with Bo.Optimizer.local_search_frac = frac } in
      let h =
        Bo.Optimizer.maximize (Rng.create 75) ~settings:s space
          ~f:(eval (Rng.create 76))
      in
      Printf.printf "  frac %.2f: best F1 %.4f\n" frac (best_feasible h))
    [ 0.0; 0.5; 0.9 ];

  (* 4. Successive halving (AutoKeras-style) at a matched budget: the
     fidelity knob scales training epochs. *)
  let data = Model_spec.load spec in
  let hb_settings =
    { Bo.Hyperband.default_settings with Bo.Hyperband.initial_candidates = 27 }
  in
  let hb_eval config ~fidelity =
    (* Shrink the training set to the rung's fidelity — a cheap proxy for a
       shorter training budget. *)
    let train = data.Model_spec.train in
    let n = Homunculus_ml.Dataset.n_samples train in
    let keep = Stdlib.max 50 (int_of_float (fidelity *. float_of_int n)) in
    let sub =
      Homunculus_ml.Dataset.subset train (Array.init (Stdlib.min keep n) Fun.id)
    in
    let small_spec =
      Model_spec.make ~name:"hb"
        ~algorithms:[ Model_spec.Dnn ]
        ~loader:(fun () -> Model_spec.data ~train:sub ~test:data.Model_spec.test)
        ()
    in
    let artifact =
      Evaluator.evaluate
        (Rng.create (77 lxor Bo.Config.hash config))
        platform small_spec Model_spec.Dnn config
    in
    {
      Bo.Hyperband.objective = artifact.Evaluator.objective;
      feasible =
        artifact.Evaluator.verdict.Homunculus_backends.Resource.feasible;
    }
  in
  let hb = Bo.Hyperband.search (Rng.create 78) ~settings:hb_settings space ~f:hb_eval in
  Printf.printf
    "\nsuccessive halving (27 candidates, eta 3, %d total evals):\n  best F1 %.4f\n"
    (Bo.Hyperband.total_evaluations hb_settings)
    (best_feasible hb);

  (* 5. Multi-objective: the accuracy-vs-footprint Pareto front. *)
  Printf.printf "\nmulti-objective (random scalarizations) Pareto front:\n";
  let points =
    Compiler.search_tradeoff ~options:Bench_config.search_options
      ~n_scalarizations:4 platform spec
  in
  List.iter
    (fun p ->
      Printf.printf "  F1 %.4f at %.0f%% of the grid (w = %.2f)\n"
        p.Compiler.artifact.Evaluator.objective
        (100. *. p.Compiler.resource_fraction)
        p.Compiler.weight)
    points;
  let front =
    List.map
      (fun p ->
        ([| p.Compiler.artifact.Evaluator.objective;
            1. -. p.Compiler.resource_fraction |], ()))
      points
  in
  Printf.printf "  hypervolume (F1 x grid headroom, ref origin): %.4f\n"
    (Bo.Pareto.hypervolume2 ~reference:[| 0.; 0. |] front)
