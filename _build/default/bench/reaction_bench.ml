(* §5.1.1 "Homunculus and Reaction Time": quantify how quickly the
   per-packet BD model reaches a verdict compared to waiting 3,600 s for a
   full flowmarker. Uses the Table 2 Hom-BD artifact as the classifier. *)

open Homunculus_backends
open Homunculus_netdata
module Rng = Homunculus_util.Rng

let run () =
  Bench_config.section "Reaction time (5.1.1): per-packet vs full-flow BD";
  let a = Table2.compute () in
  let model =
    List.nth a.Table2.generated_models 2 (* AD, TC, BD order *)
  in
  let classify features = Inference.predict model features in
  let rng = Rng.create (Bench_config.seed + 11) in
  let flows =
    Flowsim.generate rng
      ~mix:{ Flowsim.n_flows = 300; botnet_frac = 0.5; max_packets = 400 }
      ()
  in
  let curve =
    Reaction.detection_curve ~classify ~bins:Botnet.Fused
      ~prefix_lengths:[ 2; 4; 8; 16; 32; 64; 128 ] flows
  in
  Printf.printf "%-14s %8s %8s\n" "packets seen" "F1" "flows";
  List.iter
    (fun p ->
      Printf.printf "%-14d %8.1f %8d\n" p.Reaction.packets_seen
        (100. *. p.Reaction.f1) p.Reaction.n_flows)
    curve;
  let reactions = Reaction.reaction_times ~classify ~bins:Botnet.Fused flows in
  let s = Reaction.summarize reactions in
  Format.printf "\n%a@." Reaction.pp_summary s;
  Printf.printf
    "paper's comparison point: FlowLens aggregates flowmarkers for up to\n\
     3,600 s before classifying; the per-packet model above reaches its\n\
     median verdict %.0fx sooner.\n"
    (3600. /. Stdlib.max 1e-3 s.Reaction.median_seconds);
  (* §5.1.2's other claim: the 5x smaller flowmarker (151 -> 30 bins) tracks
     proportionally more concurrent flows in the same register SRAM. *)
  let sram = 1 lsl 21 (* 2 MiB of per-flow registers *) in
  let cap bins =
    Flow_table.capacity (Flow_table.create ~sram_bytes:sram ~marker_bins:bins ())
  in
  let full = cap 151 and fused = cap 30 in
  Printf.printf
    "\nflow-state capacity in 2 MiB of registers: %d flows at 151 bins vs %d\n\
     at 30 bins — %.1fx more (paper: 'reduce flowmarker size by 5x, hence\n\
     increasing the number of flows we can handle proportionally').\n"
    full fused
    (float_of_int fused /. float_of_int full)
