(* Figure 4: regret plot — F1 score of the anomaly-detection DNN per
   Bayesian-optimization iteration on the MapReduce grid. The paper's shape:
   poor initial results, quick stabilization, then a trade-off between
   exploiting the incumbent and exploring better variants. *)

open Homunculus_core
module Bo = Homunculus_bo

let run () =
  Bench_config.section "Figure 4: BO regret for the AD DNN on Taurus";
  let a = Table2.compute () in
  let history = List.assoc "Hom-AD" a.Table2.histories in
  print_string (Report.render_regret ~width:64 ~height:14 history);
  Printf.printf "\niteration, objective, best_so_far, feasible\n";
  let best = ref neg_infinity in
  List.iter
    (fun e ->
      if e.Bo.History.feasible && e.Bo.History.objective > !best then
        best := e.Bo.History.objective;
      Printf.printf "%3d, %7.4f, %7.4f, %b\n" e.Bo.History.iteration
        e.Bo.History.objective
        (if !best = neg_infinity then Float.nan else !best)
        e.Bo.History.feasible)
    (Bo.History.entries history);
  (* Shape check: the curve improves after the random warm-up phase. *)
  let curve = Bo.History.best_so_far history in
  let n_init = Bench_config.search_options.Homunculus_core.Compiler.bo_settings.Bo.Optimizer.n_init in
  let warm = curve.(Stdlib.min (n_init - 1) (Array.length curve - 1)) in
  let final = curve.(Array.length curve - 1) in
  Printf.printf
    "\nbest after warm-up: %.4f; final: %.4f; BO improved on random init: %b\n"
    warm final (final >= warm)
