bench/main.ml: Ablation Array Bench_config Fig4 Fig6 Fig7 List Micro Printf Reaction_bench String Sys Table2 Table3 Table4 Table5 Unix
