bench/table4.ml: Apps Array Bench_config Compiler Evaluator Fusion Homunculus_alchemy Homunculus_backends Homunculus_core Homunculus_ml Homunculus_util List Model_spec Platform Printf Taurus
