bench/table3.ml: Apps Bench_config Compiler Evaluator Homunculus_alchemy Homunculus_backends Homunculus_core List Platform Printf Resource Schedule Taurus
