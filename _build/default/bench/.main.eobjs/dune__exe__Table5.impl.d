bench/table5.ml: Bench_config Fpga Homunculus_backends List Printf Table2
