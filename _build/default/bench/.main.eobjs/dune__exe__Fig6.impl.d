bench/fig6.ml: Array Bench_config Botnet Float Flow Flowsim Homunculus_netdata Homunculus_util List Printf Stdlib String
