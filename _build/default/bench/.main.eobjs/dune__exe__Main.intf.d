bench/main.mli:
