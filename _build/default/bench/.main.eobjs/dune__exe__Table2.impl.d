bench/table2.ml: Apps Baselines Bench_config Compiler Evaluator Homunculus_alchemy Homunculus_backends Homunculus_bo Homunculus_core List Model_ir Platform Printf Taurus
