bench/baselines.ml: Apps Bench_config Dataset Homunculus_alchemy Homunculus_backends Homunculus_ml Homunculus_util Mlp Model_ir Model_spec Optimizer Scaler Train
