bench/fig7.ml: Apps Array Bench_config Compiler Evaluator Homunculus_alchemy Homunculus_backends Homunculus_bo Homunculus_core List Platform Printf String
