bench/fig4.ml: Array Bench_config Float Homunculus_bo Homunculus_core List Printf Report Stdlib Table2
