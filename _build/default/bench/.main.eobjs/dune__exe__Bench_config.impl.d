bench/bench_config.ml: Compiler Homunculus_bo Homunculus_core Printf String Sys
