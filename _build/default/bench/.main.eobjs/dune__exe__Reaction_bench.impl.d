bench/reaction_bench.ml: Bench_config Botnet Flow_table Flowsim Format Homunculus_backends Homunculus_netdata Homunculus_util Inference List Printf Reaction Stdlib Table2
