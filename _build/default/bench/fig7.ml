(* Figure 7: regret plot of the V-measure for a Homunculus-generated KMeans
   traffic classifier on match-action tables, at five table budgets (K5
   ... K1). Homunculus fits each budget by generating coarser clusterings;
   quality degrades gracefully as MATs disappear. *)

open Homunculus_alchemy
open Homunculus_core
module Bo = Homunculus_bo

let run () =
  Bench_config.section "Figure 7: KMeans V-measure vs MAT budget (K5..K1)";
  let spec = Apps.tc_cluster_spec () in
  let results =
    List.map
      (fun budget ->
        let platform = Platform.with_tables (Platform.tofino ()) budget in
        let r =
          Compiler.search_model ~options:Bench_config.search_options platform spec
        in
        (budget, r))
      [ 5; 4; 3; 2; 1 ]
  in
  Printf.printf "%-5s %12s %8s\n" "K" "V-measure" "MATs";
  List.iter
    (fun (budget, (r : Compiler.model_result)) ->
      let a = r.Compiler.artifact in
      Printf.printf "K%-4d %12.2f %8d\n" budget
        (100. *. a.Evaluator.objective)
        (Homunculus_backends.Tofino.mats_used a.Evaluator.verdict))
    results;
  Printf.printf "\nregret curves (best V-measure%% so far per iteration):\n";
  List.iter
    (fun (budget, r) ->
      let curve = Bo.History.best_so_far r.Compiler.history in
      let pts =
        Array.to_list curve
        |> List.map (fun v ->
               if v = neg_infinity then "  -  " else Printf.sprintf "%5.1f" (100. *. v))
      in
      Printf.printf "K%d: %s\n" budget (String.concat " " pts))
    results;
  (* Shape check: more tables never hurt the final score. *)
  let finals =
    List.map
      (fun (b, (r : Compiler.model_result)) ->
        (b, r.Compiler.artifact.Evaluator.objective))
      results
  in
  let sorted_by_budget = List.sort (fun (a, _) (b, _) -> compare b a) finals in
  let monotone =
    let rec go = function
      | (_, x) :: ((_, y) :: _ as rest) -> x +. 0.02 >= y && go rest
      | _ -> true
    in
    go sorted_by_budget
  in
  Printf.printf
    "\nfinal V-measure non-increasing as tables shrink (2%% tolerance): %b\n"
    monotone
