(* Table 3: resource scaling of app-chaining strategies on a Taurus switch.

   The paper chains four copies of the anomaly-detection DNN in three
   topologies and shows the total resource usage is identical regardless of
   strategy (24 CUs / 24 MUs for all three in the paper):

     DNN > DNN > DNN > DNN      24 / 24
     DNN | DNN | DNN | DNN      24 / 24
     DNN > (DNN | DNN) > DNN    24 / 24 *)

open Homunculus_alchemy
open Homunculus_backends
open Homunculus_core

let run () =
  Bench_config.section "Table 3: multi-application chaining strategies";
  let platform = Platform.taurus () in
  let spec = Apps.ad_spec () in
  (* Four virtualized models share one switch, so each is searched under a
     quarter-grid resource slice (paper: "emulate virtualization of user
     models on a single Taurus switch"), then accounted on the full grid. *)
  let slice = Platform.with_resources platform ~rows:8 ~cols:8 in
  let result =
    Compiler.search_model ~options:Bench_config.search_options slice spec
  in
  let verdict =
    Platform.estimate platform result.Compiler.artifact.Evaluator.model_ir
  in
  let estimate _ = verdict in
  let m = Schedule.model spec in
  let strategies =
    [
      ("DNN > DNN > DNN > DNN", Schedule.(m >>> m >>> m >>> m));
      ("DNN | DNN | DNN | DNN", Schedule.(m ||| m ||| m ||| m));
      ("DNN > (DNN | DNN) > DNN", Schedule.(m >>> (m ||| m) >>> m));
    ]
  in
  Printf.printf "%-26s %6s %6s %12s %12s\n" "Strategy" "CUs" "MUs" "latency(ns)"
    "Gpkt/s";
  let totals =
    List.map
      (fun (name, schedule) ->
        let c = Schedule.combine schedule ~perf:(Platform.perf platform) ~estimate in
        let v = c.Schedule.verdict in
        Printf.printf "%-26s %6d %6d %12.1f %12.3f\n" name (Taurus.cus_used v)
          (Taurus.mus_used v) v.Resource.latency_ns v.Resource.throughput_gpps;
        (Taurus.cus_used v, Taurus.mus_used v))
      strategies
  in
  let all_equal = List.for_all (fun t -> t = List.hd totals) totals in
  Printf.printf
    "  resource usage identical across strategies: %b [paper: constant]\n"
    all_equal;
  let cu, mu = List.hd totals in
  Printf.printf "  four instances fit the 128-CU/128-MU switch: %b (%d/%d)\n"
    (cu <= 128 && mu <= 128) cu mu
