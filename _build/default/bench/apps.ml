(* The three evaluation applications (paper §5): anomaly detection (AD),
   traffic classification (TC), botnet detection (BD) — shared across the
   table/figure reproductions, computed once and memoized. *)

open Homunculus_alchemy
module Rng = Homunculus_util.Rng
module Nslkdd = Homunculus_netdata.Nslkdd
module Iot = Homunculus_netdata.Iot
module Botnet = Homunculus_netdata.Botnet

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
        let v = f () in
        cache := Some v;
        v

let ad_spec =
  memo (fun () ->
      Model_spec.make ~name:"AD" ~metric:Model_spec.F1
        ~algorithms:[ Model_spec.Dnn ]
        ~loader:(fun () ->
          let rng = Rng.create Bench_config.seed in
          let train, test =
            Nslkdd.generate_split rng ~n_train:Bench_config.ad_train
              ~n_test:Bench_config.ad_test ()
          in
          Model_spec.data ~train ~test)
        ())

let tc_spec =
  memo (fun () ->
      Model_spec.make ~name:"TC" ~metric:Model_spec.F1
        ~algorithms:[ Model_spec.Dnn ]
        ~loader:(fun () ->
          let rng = Rng.create (Bench_config.seed + 1) in
          let train, test =
            Iot.generate_split rng ~n_train:Bench_config.tc_train
              ~n_test:Bench_config.tc_test ()
          in
          Model_spec.data ~train ~test)
        ())

let bd_spec =
  memo (fun () ->
      Model_spec.make ~name:"BD" ~metric:Model_spec.F1
        ~algorithms:[ Model_spec.Dnn ]
        ~loader:(fun () ->
          let rng = Rng.create (Bench_config.seed + 2) in
          let train, test =
            Botnet.generate rng ~n_train_flows:Bench_config.bd_train_flows
              ~n_test_flows:Bench_config.bd_test_flows ()
          in
          Model_spec.data ~train ~test)
        ())

let tc_cluster_spec =
  memo (fun () ->
      Model_spec.make ~name:"TC-kmeans" ~metric:Model_spec.V_measure
        ~algorithms:[ Model_spec.Kmeans ]
        ~loader:(fun () ->
          let rng = Rng.create (Bench_config.seed + 3) in
          let train, test =
            Iot.generate_split rng ~n_train:Bench_config.tc_train
              ~n_test:Bench_config.tc_test ()
          in
          Model_spec.data ~train ~test)
        ())
