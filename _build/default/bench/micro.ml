(* Bechamel micro-benchmarks: one per reproduced table/figure, timing the
   hot path that experiment exercises, plus the code generators. *)

open Bechamel
open Toolkit
module Rng = Homunculus_util.Rng
module Ml = Homunculus_ml
module Bo = Homunculus_bo
open Homunculus_backends
open Homunculus_alchemy

let dnn_layer n_in n_out activation =
  {
    Model_ir.n_in;
    n_out;
    activation;
    weights = Array.make_matrix n_out n_in 0.1;
    biases = Array.make n_out 0.;
  }

let ad_dnn =
  Model_ir.Dnn
    {
      name = "ad";
      layers = [| dnn_layer 7 12 "relu"; dnn_layer 12 8 "relu"; dnn_layer 8 2 "linear" |];
    }

let kmeans5 = Model_ir.Kmeans { name = "tc"; centroids = Array.make_matrix 5 7 0.5 }

(* Table 2 hot path: one mini-batch training step of the AD-sized MLP. *)
let bench_train_step =
  let rng = Rng.create 1 in
  let mlp = Ml.Mlp.create rng ~input_dim:7 ~hidden:[| 12; 8 |] ~output_dim:2 () in
  let x = Array.init 32 (fun _ -> Array.init 7 (fun _ -> Rng.float rng 1.)) in
  let t = Array.init 32 (fun i -> Ml.Dataset.one_hot ~n_classes:2 (i mod 2)) in
  Test.make ~name:"table2/mlp-batch-step"
    (Staged.stage (fun () ->
         Ml.Mlp.zero_grads mlp;
         for i = 0 to 31 do
           ignore (Ml.Mlp.train_sample mlp ~x:x.(i) ~target:t.(i))
         done;
         Ml.Mlp.scale_grads mlp (1. /. 32.)))

(* Table 3 hot path: folding a 4-model schedule's resource verdict. *)
let bench_schedule_combine =
  let spec =
    Model_spec.make ~name:"m"
      ~loader:(fun () ->
        let d =
          Ml.Dataset.create ~x:[| [| 0. |]; [| 1. |] |] ~y:[| 0; 1 |] ~n_classes:2 ()
        in
        Model_spec.data ~train:d ~test:d)
      ()
  in
  let m = Schedule.model spec in
  let schedule = Schedule.(m >>> (m ||| m) >>> m) in
  let verdict = Taurus.estimate Taurus.default_grid Resource.line_rate ad_dnn in
  Test.make ~name:"table3/schedule-combine"
    (Staged.stage (fun () ->
         ignore
           (Schedule.combine schedule ~perf:Resource.line_rate
              ~estimate:(fun _ -> verdict))))

(* Table 4 hot path: the feature-overlap test driving fusion decisions. *)
let bench_fusion_overlap =
  let mk name seed =
    Model_spec.make ~name
      ~loader:(fun () ->
        let rng = Rng.create seed in
        let x = Array.init 64 (fun _ -> Array.init 7 (fun _ -> Rng.float rng 1.)) in
        let y = Array.init 64 (fun i -> i mod 2) in
        let d = Ml.Dataset.create ~x ~y ~n_classes:2 () in
        Model_spec.data ~train:d ~test:d)
      ()
  in
  let a = mk "a" 1 and b = mk "b" 2 in
  let _ = Homunculus_core.Fusion.feature_overlap a b in
  Test.make ~name:"table4/fusion-overlap"
    (Staged.stage (fun () -> ignore (Homunculus_core.Fusion.feature_overlap a b)))

(* Table 5 hot path: the FPGA resource/power estimate. *)
let bench_fpga_estimate =
  Test.make ~name:"table5/fpga-report"
    (Staged.stage (fun () -> ignore (Fpga.report Fpga.alveo_u250 ad_dnn)))

(* Figure 4 hot path: one surrogate fit + EI scoring over a candidate pool. *)
let bench_bo_iteration =
  let rng = Rng.create 2 in
  let x = Array.init 40 (fun _ -> Array.init 5 (fun _ -> Rng.float rng 1.)) in
  let y = Array.map (fun row -> row.(0) +. row.(1)) x in
  Test.make ~name:"fig4/surrogate-fit-and-score"
    (Staged.stage (fun () ->
         let rng' = Rng.copy rng in
         let s = Bo.Surrogate.fit rng' ~n_trees:15 ~x ~y () in
         for _ = 1 to 50 do
           let p = Array.init 5 (fun _ -> Rng.float rng' 1.) in
           let mean, std = Bo.Surrogate.predict s p in
           ignore (Bo.Acquisition.expected_improvement ~mean ~std ~best:1.2)
         done))

(* Figure 6 hot path: per-packet partial flowmarker computation. *)
let bench_flowmarker =
  let rng = Rng.create 3 in
  let flow = Homunculus_netdata.Flowsim.generate_flow rng ~id:0 ~app:"storm" () in
  Test.make ~name:"fig6/partial-flowmarker"
    (Staged.stage (fun () ->
         ignore
           (Homunculus_netdata.Botnet.flow_features Homunculus_netdata.Botnet.Fused
              flow ~first_packets:16 ())))

(* Figure 7 hot path: a full KMeans fit at the paper's scale. *)
let bench_kmeans_fit =
  let rng = Rng.create 4 in
  let x = Array.init 500 (fun _ -> Array.init 7 (fun _ -> Rng.float rng 1.)) in
  Test.make ~name:"fig7/kmeans-fit"
    (Staged.stage (fun () ->
         ignore (Ml.Kmeans.fit (Rng.copy rng) ~k:5 ~n_init:1 ~max_iter:20 x)))

(* Backend generators. *)
let bench_spatial_codegen =
  Test.make ~name:"codegen/spatial-dnn"
    (Staged.stage (fun () -> ignore (Spatial.emit ad_dnn)))

let bench_p4_codegen =
  Test.make ~name:"codegen/p4-kmeans"
    (Staged.stage (fun () -> ignore (P4gen.emit kmeans5)))

let tests =
  [
    bench_train_step; bench_schedule_combine; bench_fusion_overlap;
    bench_fpga_estimate; bench_bo_iteration; bench_flowmarker;
    bench_kmeans_fit; bench_spatial_codegen; bench_p4_codegen;
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"homunculus" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let run () =
  Bench_config.section "Micro-benchmarks (Bechamel, monotonic clock)";
  let results = benchmark () in
  Hashtbl.iter
    (fun measure tbl ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then
        Hashtbl.iter
          (fun name ols ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
            | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
          tbl)
    results
