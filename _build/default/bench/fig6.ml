(* Figure 6: botnet vs benign flow-level packet-length (PL) and
   inter-arrival-time (IPT) histograms, averaged across all flows. The
   paper's observation: the two classes' histograms diverge with very few
   packets seen — certain bins simply never fill for botnet traffic — which
   is the evidence motivating per-packet ML. *)

open Homunculus_netdata
module Rng = Homunculus_util.Rng
module Stats = Homunculus_util.Stats

let spark values =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let hi = Array.fold_left Stdlib.max 1e-9 values in
  String.init (Array.length values) (fun i ->
      let level =
        int_of_float (values.(i) /. hi *. float_of_int (Array.length glyphs - 1))
      in
      glyphs.(Stdlib.max 0 (Stdlib.min 7 level)))

let print_series name values =
  Printf.printf "%-18s [%s]\n%18s  %s\n" name (spark values) ""
    (String.concat " " (List.map (Printf.sprintf "%.3f") (Array.to_list values)))

let run () =
  Bench_config.section "Figure 6: botnet vs benign flowmarker histograms";
  let rng = Rng.create (Bench_config.seed + 6) in
  let flows =
    Flowsim.generate rng
      ~mix:{ Flowsim.n_flows = 600; botnet_frac = 0.5; max_packets = 400 }
      ()
  in
  let benign_pl, benign_ipt =
    Flowsim.average_flowmarker flows ~label:Flow.Benign
      ~pl_spec:Botnet.pl_spec_fused ~ipt_spec:Botnet.ipt_spec_fused
  in
  let botnet_pl, botnet_ipt =
    Flowsim.average_flowmarker flows ~label:Flow.Botnet
      ~pl_spec:Botnet.pl_spec_fused ~ipt_spec:Botnet.ipt_spec_fused
  in
  Printf.printf "packet-length histogram (23 bins x 64 B):\n";
  print_series "  benign PL" benign_pl;
  print_series "  botnet PL" botnet_pl;
  Printf.printf "\ninter-arrival-time histogram (7 bins x 34 s):\n";
  print_series "  benign IPT" benign_ipt;
  print_series "  botnet IPT" botnet_ipt;
  (* Shape checks mirroring the paper's reading of the figure. *)
  let l1 a b =
    Stats.sum (Array.mapi (fun i v -> Float.abs (v -. b.(i))) a)
  in
  Printf.printf "\nL1 distance between class-average histograms: PL %.3f, IPT %.3f\n"
    (l1 benign_pl botnet_pl) (l1 benign_ipt botnet_ipt);
  let mtu_mass = Stats.sum (Array.sub benign_pl 19 4) in
  let botnet_mtu_mass = Stats.sum (Array.sub botnet_pl 19 4) in
  Printf.printf
    "near-MTU bins hold %.1f%% of benign mass vs %.1f%% of botnet mass\n\
     (the bins botnets never fill — the paper's early-detection signal)\n"
    (100. *. mtu_mass)
    (100. *. botnet_mtu_mass);
  let botnet_tail = Stats.sum (Array.sub botnet_ipt 1 6) in
  let benign_tail = Stats.sum (Array.sub benign_ipt 1 6) in
  Printf.printf "IPT mass beyond the first bin: botnet %.1f%%, benign %.1f%%\n"
    (100. *. botnet_tail) (100. *. benign_tail)
