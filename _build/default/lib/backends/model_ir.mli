(** Backend-independent description of a trained model — the contract between
    the optimization core (which trains) and the backend generators (which
    map, estimate, and emit code). *)

type dnn_layer = {
  n_in : int;
  n_out : int;
  activation : string;  (** "relu", "sigmoid", "tanh", "linear" *)
  weights : float array array;  (** [n_out x n_in] *)
  biases : float array;  (** length [n_out] *)
}

type t =
  | Dnn of { name : string; layers : dnn_layer array }
  | Kmeans of { name : string; centroids : float array array }
  | Svm of {
      name : string;
      class_weights : float array array;  (** one weight vector per class *)
      biases : float array;
    }
  | Tree of {
      name : string;
      root : Homunculus_ml.Decision_tree.node;
      n_features : int;
      n_classes : int;
    }

val name : t -> string
val with_name : t -> string -> t
(** Rename a model (generated code carries the application name). *)

val map_parameters : (float -> float) -> t -> t
(** Apply a function to every trained scalar (weights, biases, centroid
    coordinates, split thresholds) — e.g. fixed-point quantization. Tree leaf
    distributions are left untouched (they index classes, not magnitudes). *)

val fold_standardization : mean:float array -> stddev:float array -> t -> t
(** Absorb a feature-standardization preprocessing step
    [x' = (x - mean) / stddev] into the model so it consumes *raw* features —
    what the data plane actually parses out of packets. Exact for DNNs and
    SVMs (the affine map folds into the first linear layer) and for trees
    (thresholds map back to raw units). KMeans centroids are mapped to raw
    coordinates; axis-aligned cluster cells remain exact, but raw-space
    nearest-centroid distances are no longer variance-weighted.
    @raise Invalid_argument when the arrays do not match the input
    dimension or any [stddev] entry is not positive. *)

val algorithm : t -> string
(** "dnn" | "kmeans" | "svm" | "tree". *)

val input_dim : t -> int
val output_dim : t -> int
(** Classes for classifiers, clusters for KMeans. *)

val param_count : t -> int
(** Trainable scalars (weights + biases, centroid coordinates, tree
    thresholds + leaf distributions). *)

val dnn_layer_dims : t -> int array
(** [input; hidden...; output] for DNNs. @raise Invalid_argument on other
    algorithms. *)

val of_mlp : name:string -> Homunculus_ml.Mlp.t -> t
val of_kmeans : name:string -> Homunculus_ml.Kmeans.t -> t
val of_svm : name:string -> Homunculus_ml.Svm.t -> t

val validate : t -> (unit, string) result
(** Structural sanity: consistent layer chaining, non-empty weights, ragged
    shapes rejected. *)
