type ternary = { value : int; mask : int }

let matches t key = key land t.mask = t.value

let check_args ~width ~lo ~hi =
  if width < 1 || width > 30 then invalid_arg "Range_match: width outside [1, 30]";
  let limit = 1 lsl width in
  if lo < 0 || hi < lo || hi >= limit then
    invalid_arg "Range_match: range outside the key space"

(* Greedy aligned-block decomposition: repeatedly take the largest
   power-of-two block that starts at [lo] (alignment) and fits below [hi].
   Each block is one prefix = one TCAM row; the cover is minimal. *)
let fold_blocks ~width ~lo ~hi ~init ~f =
  check_args ~width ~lo ~hi;
  let rec go acc lo =
    if lo > hi then acc
    else begin
      let rec block_bits k =
        if k >= width then k
        else
          let size = 1 lsl (k + 1) in
          if lo land (size - 1) <> 0 then k
          else if lo + size - 1 > hi then k
          else block_bits (k + 1)
      in
      let k = block_bits 0 in
      go (f acc ~lo ~bits:k) (lo + (1 lsl k))
    end
  in
  go init lo

let expand_range ~width ~lo ~hi =
  let full = (1 lsl width) - 1 in
  fold_blocks ~width ~lo ~hi ~init:[] ~f:(fun acc ~lo ~bits ->
      let mask = full land lnot ((1 lsl bits) - 1) in
      { value = lo land mask; mask } :: acc)
  |> List.rev

let entry_count ~width ~lo ~hi =
  fold_blocks ~width ~lo ~hi ~init:0 ~f:(fun acc ~lo:_ ~bits:_ -> acc + 1)

let worst_case ~width = if width <= 1 then 1 else (2 * width) - 2

let to_string ~width t =
  String.init width (fun i ->
      let bit = width - 1 - i in
      if t.mask land (1 lsl bit) = 0 then '*'
      else if t.value land (1 lsl bit) <> 0 then '1'
      else '0')
