module Mathx = Homunculus_util.Mathx
module Decision_tree = Homunculus_ml.Decision_tree
module Kmeans = Homunculus_ml.Kmeans

type table = { name : string; entries : int; purpose : string }

type mapping = { tables : table list }

let n_tables m = List.length m.tables

let max_entries m =
  List.fold_left (fun acc t -> Stdlib.max acc t.entries) 0 m.tables

let rec level_widths node =
  (* Number of split nodes per depth level. *)
  match node with
  | Decision_tree.Leaf _ -> []
  | Decision_tree.Split { left; right; _ } ->
      let rec merge a b =
        match (a, b) with
        | [], rest | rest, [] -> rest
        | x :: xs, y :: ys -> (x + y) :: merge xs ys
      in
      1 :: merge (level_widths left) (level_widths right)

let map_model ?(entries_per_feature = 64) model =
  let tables =
    match model with
    | Model_ir.Kmeans { name; centroids } ->
        let dim =
          if Array.length centroids = 0 then 0 else Array.length centroids.(0)
        in
        List.init (Array.length centroids) (fun c ->
            {
              name = Printf.sprintf "%s_cluster%d" name c;
              entries = entries_per_feature * Stdlib.max 1 dim;
              purpose = "range-match one cluster's cell";
            })
    | Model_ir.Svm { name; class_weights; _ } ->
        let dim =
          if Array.length class_weights = 0 then 0
          else Array.length class_weights.(0)
        in
        (* Features zeroed out by [drop_svm_features] need no table. *)
        let active f =
          Array.exists (fun w -> w.(f) <> 0.) class_weights
        in
        let feature_tables =
          List.init dim (fun f -> f)
          |> List.filter active
          |> List.map (fun f ->
                 {
                   name = Printf.sprintf "%s_feature%d" name f;
                   entries = entries_per_feature;
                   purpose = "per-feature partial vote";
                 })
        in
        feature_tables
        @ [
            {
              name = name ^ "_decision";
              entries = Array.length class_weights;
              purpose = "combine votes into a class";
            };
          ]
    | Model_ir.Tree { name; root; _ } ->
        let widths = level_widths root in
        let level_tables =
          List.mapi
            (fun level width ->
              {
                name = Printf.sprintf "%s_level%d" name level;
                entries = width * entries_per_feature;
                purpose = "evaluate one tree level";
              })
            widths
        in
        level_tables
        @ [
            {
              name = name ^ "_leaves";
              entries = Decision_tree.n_leaves root;
              purpose = "map leaf id to class";
            };
          ]
    | Model_ir.Dnn { name; layers } ->
        (* N2Net-style binarized mapping: roughly one MAT per 8 MACs. *)
        Array.to_list layers
        |> List.concat_map (fun l ->
               let macs = l.Model_ir.n_in * l.Model_ir.n_out in
               let count = Stdlib.max 1 (Mathx.ceil_div macs 8) in
               List.init count (fun i ->
                   {
                     name =
                       Printf.sprintf "%s_bnn_%dx%d_part%d" name
                         l.Model_ir.n_in l.Model_ir.n_out i;
                     entries = 256;
                     purpose = "binarized dot-product slice";
                   }))
  in
  { tables }

let table_graph ?entries_per_feature model =
  let mapping = map_model ?entries_per_feature model in
  let names = List.map (fun t -> t.name) mapping.tables in
  match model with
  | Model_ir.Kmeans _ -> Stage_alloc.independent names
  | Model_ir.Svm _ -> (
      (* Everything except the decision table is an independent vote; the
         decision reads them all. *)
      match List.rev names with
      | decision :: votes_rev ->
          let votes = List.rev votes_rev in
          Stage_alloc.independent votes
          @ [ { Stage_alloc.name = decision; depends_on = votes } ]
      | [] -> [])
  | Model_ir.Tree _ -> Stage_alloc.chain names
  | Model_ir.Dnn { layers; _ } ->
      (* Slices within a layer are parallel; each layer waits on the whole
         previous layer. Names were generated per layer in order. *)
      let counts =
        Array.to_list layers
        |> List.map (fun l ->
               let macs = l.Model_ir.n_in * l.Model_ir.n_out in
               Stdlib.max 1 (Mathx.ceil_div macs 8))
      in
      let rec split names = function
        | [] -> []
        | count :: rest ->
            let rec take k = function
              | names when k = 0 -> ([], names)
              | [] -> ([], [])
              | n :: ns ->
                  let taken, left = take (k - 1) ns in
                  (n :: taken, left)
            in
            let layer_names, remaining = take count names in
            layer_names :: split remaining rest
      in
      let groups = split names counts in
      let _, tables =
        List.fold_left
          (fun (prev, acc) group ->
            let deps = prev in
            ( group,
              acc
              @ List.map
                  (fun name -> { Stage_alloc.name; depends_on = deps })
                  group ))
          ([], []) groups
      in
      tables

let conform_kmeans km ~table_budget =
  if table_budget < 1 then invalid_arg "Iisy.conform_kmeans: budget < 1";
  if Kmeans.k km <= table_budget then km
  else Kmeans.merge_clusters km ~into:table_budget

let drop_svm_features model ~table_budget =
  if table_budget < 2 then invalid_arg "Iisy.drop_svm_features: budget < 2";
  match model with
  | Model_ir.Svm { name; class_weights; biases } ->
      let dim =
        if Array.length class_weights = 0 then 0
        else Array.length class_weights.(0)
      in
      let keep_budget = table_budget - 1 in
      if dim <= keep_budget then (model, [||])
      else begin
        (* Impact of a feature = summed |weight| across classes. *)
        let impact =
          Array.init dim (fun f ->
              Array.fold_left
                (fun acc w -> acc +. Float.abs w.(f))
                0. class_weights)
        in
        let order = Array.init dim (fun f -> f) in
        Array.sort (fun a b -> compare impact.(a) impact.(b)) order;
        let n_drop = dim - keep_budget in
        let dropped = Array.sub order 0 n_drop in
        let is_dropped = Array.make dim false in
        Array.iter (fun f -> is_dropped.(f) <- true) dropped;
        let conformed =
          Array.map
            (fun w -> Array.mapi (fun f v -> if is_dropped.(f) then 0. else v) w)
            class_weights
        in
        Array.sort compare dropped;
        (Model_ir.Svm { name; class_weights = conformed; biases }, dropped)
      end
  | Model_ir.Dnn _ | Model_ir.Kmeans _ | Model_ir.Tree _ ->
      invalid_arg "Iisy.drop_svm_features: not an SVM"
