(** A software switch runtime for MAT-mapped models — the deployment-side
    twin of {!P4gen.emit_entries}.

    Where {!Inference} evaluates the IR in floating point (what the model
    means), this module executes it the way a Tofino-class pipeline
    actually would: features quantized to 16-bit fixed-point keys, cluster
    cells as per-feature range tables with TCAM priority semantics (first
    match wins, a default action on miss), SVM votes and tree thresholds in
    integer arithmetic. The gap between the two is the fidelity the
    deployment loses to quantization and cell-shaped decision regions. *)

type t

val load :
  ?entries_per_feature:int ->
  ?calibration:float array array ->
  Model_ir.t ->
  t
(** Build the quantized tables (default granularity 64 cells/feature, the
    {!Iisy} default). [calibration] — a sample of representative raw inputs —
    sets each feature's fixed-point scale so the 16-bit key space covers the
    observed range plus headroom (how real deployments pick quantization
    parameters); without it, keys use the plain 8.8 encoding, which
    saturates beyond |x| = 128. @raise Invalid_argument for DNNs — they do
    not map to MATs; binarize first ({!Bnn.binarize_dnn}) and treat the
    result as its own model. *)

val feature_scales : t -> float array
(** The per-feature key scale chosen at load time. *)

val classify : t -> float array -> int
(** Push one feature vector through the table pipeline. *)

val classify_all : t -> float array array -> int array

val miss_count : t -> int
(** KMeans pipelines only: how many packets missed every cluster cell since
    [load] (they fall back to the default action: nearest quantized
    centroid). 0 for SVM/tree pipelines. *)

val fidelity : t -> Model_ir.t -> x:float array array -> float
(** Agreement rate between the table pipeline and the floating-point
    reference {!Inference.predict} on the given inputs. *)

val quantize : float -> int
(** The shared 8.8 fixed-point key encoding (signed, clamped to 16 bits). *)
