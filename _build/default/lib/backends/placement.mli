(** Place-and-route-lite for the Taurus MapReduce grid.

    The grid is a checkerboard of compute units (CUs) and memory units (MUs).
    Each pipeline stage demands some of each; this pass assigns concrete
    tiles, keeping a stage's units contiguous and consecutive stages adjacent
    (the job SARA's placer does before Spatial bitstream generation). The
    wirelength metric and the ASCII rendering make placement quality
    inspectable. *)

type tile_kind = Cu | Mu

type tile = { row : int; col : int; kind : tile_kind }

val tile_kind_at : row:int -> col:int -> tile_kind
(** The checkerboard pattern: CU where [(row + col)] is even. *)

type placement = {
  grid : Taurus.grid;
  assignments : (string * tile list) list;
      (** per stage label, in pipeline order *)
}

val place : Taurus.grid -> (string * int * int) list -> (placement, string) result
(** [place grid demands] with demands as [(label, cus, mus)] from
    {!Taurus.layer_demands}. Tiles are claimed in column-sweep order so each
    stage occupies a band and successive stages touch. Fails with a message
    when the grid runs out of either tile kind. *)

val place_model : Taurus.grid -> Model_ir.t -> (placement, string) result

val wirelength : placement -> float
(** Sum over consecutive stages of the Manhattan distance between their
    tile centroids — lower is better. 0 for a single stage. *)

val utilization : placement -> float
(** Fraction of the grid's tiles claimed. *)

val render : placement -> string
(** ASCII floor plan: one character per tile, stage index (mod 10) for
    claimed tiles, '.' for free CUs, ',' for free MUs. *)
