(** Match-action table placement onto pipeline stages.

    RMT-style switches execute tables in a fixed number of physical stages;
    tables in the same stage run in parallel, so a table must be placed in a
    strictly later stage than every table it depends on (match-after-action
    dependencies). This allocator levelizes the dependency DAG and packs
    levels greedily — the pass a P4 compiler runs to decide whether a
    program fits the pipeline. *)

type table = {
  name : string;
  depends_on : string list;  (** names of tables that must execute earlier *)
}

type allocation = {
  stage_of : (string * int) list;  (** 0-based stage per table *)
  stages_used : int;
  occupancy : int array;  (** tables placed per stage, length [stages_used] *)
}

type error =
  | Cycle of string list  (** tables trapped in a dependency cycle *)
  | Capacity_exceeded of { needed_stages : int; available : int }
  | Unknown_dependency of { table : string; dependency : string }

val error_to_string : error -> string

val allocate :
  n_stages:int -> tables_per_stage:int -> table list -> (allocation, error) result
(** Place every table in the earliest stage compatible with its dependencies
    and stage capacity. @raise Invalid_argument on non-positive limits or
    duplicate table names. *)

val critical_path : table list -> int
(** Length (in stages) of the longest dependency chain — the minimum stage
    count any allocator needs. 0 for an empty program.
    @raise Invalid_argument on cycles or unknown dependencies. *)

val independent : string list -> table list
(** Convenience: tables with no ordering constraints. *)

val chain : string list -> table list
(** Convenience: each table depends on the previous one. *)
