type tile_kind = Cu | Mu

type tile = { row : int; col : int; kind : tile_kind }

let tile_kind_at ~row ~col = if (row + col) mod 2 = 0 then Cu else Mu

type placement = {
  grid : Taurus.grid;
  assignments : (string * tile list) list;
}

(* Free tiles in column-sweep order (all of column 0 top to bottom, then
   column 1, ...), so a stage's claim forms a vertical band and the next
   stage starts where the previous one ended. *)
let place (grid : Taurus.grid) demands =
  let rows = grid.Taurus.rows and cols = grid.Taurus.cols in
  let order = ref [] in
  for col = cols - 1 downto 0 do
    for row = rows - 1 downto 0 do
      order := { row; col; kind = tile_kind_at ~row ~col } :: !order
    done
  done;
  let free = ref !order in
  let take label kind count =
    let rec go taken remaining n = function
      | [] ->
          if n = 0 then Ok (List.rev taken, List.rev remaining)
          else
            Error
              (Printf.sprintf "stage %s: out of %s tiles (%d more needed)" label
                 (match kind with Cu -> "CU" | Mu -> "MU")
                 n)
      | tile :: rest ->
          if n > 0 && tile.kind = kind then go (tile :: taken) remaining (n - 1) rest
          else go taken (tile :: remaining) n rest
    in
    match go [] [] count !free with
    | Ok (taken, remaining) ->
        free := remaining;
        Ok taken
    | Error _ as e -> e
  in
  let rec place_all acc = function
    | [] -> Ok { grid; assignments = List.rev acc }
    | (label, cus, mus) :: rest -> (
        if cus < 0 || mus < 0 then
          invalid_arg "Placement.place: negative demand"
        else
          match take label Cu cus with
          | Error e -> Error e
          | Ok cu_tiles -> (
              match take label Mu mus with
              | Error e -> Error e
              | Ok mu_tiles -> place_all ((label, cu_tiles @ mu_tiles) :: acc) rest))
  in
  place_all [] demands

let place_model grid model = place grid (Taurus.layer_demands grid model)

let centroid tiles =
  let n = float_of_int (List.length tiles) in
  if n = 0. then (0., 0.)
  else
    let sr, sc =
      List.fold_left
        (fun (sr, sc) t -> (sr +. float_of_int t.row, sc +. float_of_int t.col))
        (0., 0.) tiles
    in
    (sr /. n, sc /. n)

let wirelength p =
  let rec go acc = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        let ra, ca = centroid a and rb, cb = centroid b in
        go (acc +. Float.abs (ra -. rb) +. Float.abs (ca -. cb)) rest
    | [ _ ] | [] -> acc
  in
  go 0. p.assignments

let utilization p =
  let total = p.grid.Taurus.rows * p.grid.Taurus.cols in
  let used =
    List.fold_left (fun acc (_, tiles) -> acc + List.length tiles) 0 p.assignments
  in
  float_of_int used /. float_of_int total

let render p =
  let rows = p.grid.Taurus.rows and cols = p.grid.Taurus.cols in
  let canvas = Array.make_matrix rows cols ' ' in
  for row = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      canvas.(row).(col) <-
        (match tile_kind_at ~row ~col with Cu -> '.' | Mu -> ',')
    done
  done;
  List.iteri
    (fun i (_, tiles) ->
      let c = Char.chr (Char.code '0' + (i mod 10)) in
      List.iter (fun t -> canvas.(t.row).(t.col) <- c) tiles)
    p.assignments;
  let buf = Buffer.create (rows * (cols + 1)) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    canvas;
  Buffer.contents buf
