module Rng = Homunculus_util.Rng
module Stats = Homunculus_util.Stats

type config = {
  ii_cycles : int;
  pipeline_cycles : int;
  clock_ghz : float;
  queue_capacity : int;
}

let config_of_mapping (grid : Taurus.grid) (m : Taurus.mapping) =
  {
    ii_cycles = m.Taurus.ii;
    pipeline_cycles = m.Taurus.pipeline_cycles + grid.Taurus.overhead_cycles;
    clock_ghz = grid.Taurus.clock_ghz;
    queue_capacity = 64;
  }

type stats = {
  packets_offered : int;
  packets_delivered : int;
  packets_dropped : int;
  mean_latency_ns : float;
  p99_latency_ns : float;
  max_queue_depth : int;
  achieved_gpps : float;
}

let simulate config ~arrivals_ns =
  let n = Array.length arrivals_ns in
  if n = 0 then invalid_arg "Pipeline_sim.simulate: no arrivals";
  for i = 1 to n - 1 do
    if arrivals_ns.(i) < arrivals_ns.(i - 1) then
      invalid_arg "Pipeline_sim.simulate: arrivals must be ascending"
  done;
  let cycle_ns = 1. /. config.clock_ghz in
  let ii_ns = float_of_int config.ii_cycles *. cycle_ns in
  let depth_ns = float_of_int config.pipeline_cycles *. cycle_ns in
  (* The ingress accepts one packet per II; a packet arriving while
     [queue_capacity] others wait is dropped. Because service is FIFO with a
     deterministic rate, the queue depth at arrival i is the number of
     earlier accepted packets not yet ingested. *)
  let next_free = ref arrivals_ns.(0) in
  let ingest_times = Queue.create () in
  let latencies = ref [] in
  let delivered = ref 0 and dropped = ref 0 in
  let max_depth = ref 0 in
  let last_departure = ref arrivals_ns.(0) in
  Array.iter
    (fun arrival ->
      (* Retire queued packets whose ingest time has passed. *)
      while
        (not (Queue.is_empty ingest_times)) && Queue.peek ingest_times <= arrival
      do
        ignore (Queue.pop ingest_times)
      done;
      let depth = Queue.length ingest_times in
      if depth > !max_depth then max_depth := depth;
      if depth >= config.queue_capacity then incr dropped
      else begin
        let ingest = Stdlib.max arrival !next_free in
        next_free := ingest +. ii_ns;
        Queue.push ingest ingest_times;
        let departure = ingest +. depth_ns in
        if departure > !last_departure then last_departure := departure;
        latencies := (departure -. arrival) :: !latencies;
        incr delivered
      end)
    arrivals_ns;
  let lat = Array.of_list !latencies in
  let busy_ns = !last_departure -. arrivals_ns.(0) in
  {
    packets_offered = n;
    packets_delivered = !delivered;
    packets_dropped = !dropped;
    mean_latency_ns = (if !delivered = 0 then 0. else Stats.mean lat);
    p99_latency_ns = (if !delivered = 0 then 0. else Stats.percentile lat 99.);
    max_queue_depth = !max_depth;
    achieved_gpps =
      (if busy_ns <= 0. then 0. else float_of_int !delivered /. busy_ns);
  }

let poisson_arrivals rng ~rate_gpps ~n =
  if rate_gpps <= 0. then invalid_arg "Pipeline_sim.poisson_arrivals: rate <= 0";
  if n <= 0 then invalid_arg "Pipeline_sim.poisson_arrivals: n <= 0";
  let t = ref 0. in
  Array.init n (fun i ->
      if i > 0 then t := !t +. Rng.exponential rng rate_gpps;
      !t)

let uniform_arrivals ~rate_gpps ~n =
  if rate_gpps <= 0. then invalid_arg "Pipeline_sim.uniform_arrivals: rate <= 0";
  if n <= 0 then invalid_arg "Pipeline_sim.uniform_arrivals: n <= 0";
  let gap = 1. /. rate_gpps in
  Array.init n (fun i -> float_of_int i *. gap)
