(** Binding dataset features to packet header fields.

    A model consumes named features ("frame_size", "ttl", "serror_rate");
    the data plane parses headers. This module records where each feature
    comes from — a parsed header field, a stateful register (inter-arrival
    times need a per-flow timestamp), or a computed expression — and emits
    the P4 metadata-extraction fragment that bridges the two. Bindings for
    the three evaluation datasets' schemas are built in. *)

type source =
  | Header_field of { header : string; field : string; width : int }
      (** e.g. ipv4.ttl, 8 bits *)
  | Register of { name : string; update : string; width : int }
      (** per-flow state, e.g. last-seen timestamp for inter-arrival *)
  | Computed of { expr : string; width : int }
      (** arithmetic over already-extracted values *)

type binding = { feature : string; source : source; scale : float }
(** [scale]: multiply the raw wire value by this to get the feature's unit
    (e.g. 1e-3 when the model was trained on milliseconds but the register
    holds microseconds). *)

type t = binding list

val builtin : string -> binding option
(** The standard catalog: every feature name used by the Nslkdd, Iot, and
    Botnet generators (histogram bins bind to register arrays). *)

val for_features : string array -> t
(** Catalog bindings for each name; unknown features fall back to a
    [Computed] placeholder flagged by {!validate}. *)

val lookup : t -> string -> binding option

val validate : t -> feature_names:string array -> (unit, string list) result
(** Every feature bound exactly once, no placeholder fallbacks left. *)

val emit_p4_metadata : t -> string
(** The P4 action body assigning [meta.featureN_key] for each binding, plus
    register declarations for stateful sources. *)
