(* The MAT backend: build a P4_ir program from the model IR using the IIsy
   mapping rules, then pretty-print it. Table entries (the control-plane
   half) are emitted separately by [emit_entries]. *)

module Decision_tree = Homunculus_ml.Decision_tree

let standard_headers =
  [
    {
      P4_ir.header_name = "ethernet_t";
      fields =
        [
          { P4_ir.field_name = "dst"; width = 48 };
          { P4_ir.field_name = "src"; width = 48 };
          { P4_ir.field_name = "etherType"; width = 16 };
        ];
    };
    {
      P4_ir.header_name = "ipv4_t";
      fields =
        [
          { P4_ir.field_name = "ttl"; width = 8 };
          { P4_ir.field_name = "protocol"; width = 8 };
          { P4_ir.field_name = "totalLen"; width = 16 };
          { P4_ir.field_name = "src"; width = 32 };
          { P4_ir.field_name = "dst"; width = 32 };
        ];
    };
  ]

let metadata ~n_features ~n_components =
  List.init n_features (fun f ->
      { P4_ir.field_name = Printf.sprintf "feature%d_key" f; width = 16 })
  @ List.init n_components (fun c ->
        { P4_ir.field_name = Printf.sprintf "vote%d" c; width = 16 })
  @ [ { P4_ir.field_name = "class_result"; width = 8 } ]

let set_class =
  {
    P4_ir.action_name = "set_class";
    params = [ ("cls", 8) ];
    body = [ "meta.class_result = cls" ];
  }

let set_vote =
  { P4_ir.action_name = "set_vote"; params = [ ("v", 16) ]; body = [] }

let feature_key f = Printf.sprintf "meta.feature%d_key" f

let range_keys dim =
  List.init dim (fun f -> { P4_ir.target = feature_key f; kind = P4_ir.Range })

let entries_per_feature_default = 64

let ingress ~actions ~tables =
  {
    P4_ir.control_name = "Ingress";
    actions;
    tables;
    apply = List.map (fun t -> P4_ir.Apply t.P4_ir.table_name) tables;
  }

let kmeans_program name centroids =
  let k = Array.length centroids in
  let dim = if k = 0 then 0 else Array.length centroids.(0) in
  let tables =
    List.init k (fun c ->
        {
          P4_ir.table_name = Printf.sprintf "%s_cluster%d" name c;
          keys = range_keys dim;
          action_refs = [ "set_class" ];
          size = entries_per_feature_default * Stdlib.max 1 dim;
        })
  in
  {
    P4_ir.program_name = name;
    headers = standard_headers;
    metadata = metadata ~n_features:dim ~n_components:k;
    ingress = ingress ~actions:[ set_class; set_vote ] ~tables;
  }

let svm_program name class_weights =
  let classes = Array.length class_weights in
  let dim = if classes = 0 then 0 else Array.length class_weights.(0) in
  let feature_tables =
    List.init dim (fun f ->
        {
          P4_ir.table_name = Printf.sprintf "%s_feature%d" name f;
          keys = [ { P4_ir.target = feature_key f; kind = P4_ir.Range } ];
          action_refs = [ "set_vote" ];
          size = entries_per_feature_default;
        })
  in
  let decision =
    {
      P4_ir.table_name = name ^ "_decision";
      keys = [ { P4_ir.target = "meta.vote0"; kind = P4_ir.Exact } ];
      action_refs = [ "set_class" ];
      size = Stdlib.max 1 classes;
    }
  in
  {
    P4_ir.program_name = name;
    headers = standard_headers;
    metadata = metadata ~n_features:dim ~n_components:classes;
    ingress =
      ingress ~actions:[ set_class; set_vote ] ~tables:(feature_tables @ [ decision ]);
  }

let tree_program name root n_features =
  let depth = Decision_tree.depth root in
  let level_tables =
    List.init depth (fun level ->
        {
          P4_ir.table_name = Printf.sprintf "%s_level%d" name level;
          keys = range_keys n_features;
          action_refs = [ "set_vote" ];
          size = (1 lsl Stdlib.min level 12) * 2;
        })
  in
  let leaves =
    {
      P4_ir.table_name = name ^ "_leaves";
      keys = [ { P4_ir.target = "meta.vote0"; kind = P4_ir.Exact } ];
      action_refs = [ "set_class" ];
      size = Decision_tree.n_leaves root;
    }
  in
  {
    P4_ir.program_name = name;
    headers = standard_headers;
    metadata = metadata ~n_features ~n_components:(Stdlib.max 1 depth);
    ingress =
      ingress ~actions:[ set_class; set_vote ] ~tables:(level_tables @ [ leaves ]);
  }

let program_of model =
  match model with
  | Model_ir.Kmeans { name; centroids } -> kmeans_program name centroids
  | Model_ir.Svm { name; class_weights; _ } -> svm_program name class_weights
  | Model_ir.Tree { name; root; n_features; _ } -> tree_program name root n_features
  | Model_ir.Dnn _ ->
      invalid_arg "P4gen.emit: DNNs are not mappable to MATs (use Taurus/FPGA)"

let emit model = P4_ir.print (program_of model)

(* Control-plane entries: quantize trained parameters into match rows.
   16-bit keys; range matches expand into ternary TCAM rows. *)
let quantize v = int_of_float (Float.round (v *. 256.)) land 0xFFFF

let emit_entries ?(entries_per_feature = entries_per_feature_default) model =
  let buf = Buffer.create 4096 in
  let bpf = Printf.bprintf in
  bpf buf "# table entries for %s\n" (Model_ir.name model);
  (match model with
  | Model_ir.Kmeans { name; centroids } ->
      (* Each cluster cell is a per-feature range; ranges expand to ternary
         TCAM rows (value/mask pairs), as the hardware actually stores them. *)
      Array.iteri
        (fun c centroid ->
          Array.iteri
            (fun f coord ->
              let center = quantize coord in
              let half = 65536 / (2 * entries_per_feature) in
              let lo = Stdlib.max 0 (center - half) in
              let hi = Stdlib.min 65535 (center + half) in
              List.iter
                (fun row ->
                  bpf buf
                    "table_add %s_cluster%d set_class %d => f%d ternary %s\n"
                    name c c f
                    (Range_match.to_string ~width:16 row))
                (Range_match.expand_range ~width:16 ~lo ~hi))
            centroid)
        centroids
  | Model_ir.Svm { name; class_weights; biases } ->
      Array.iteri
        (fun cls w ->
          Array.iteri
            (fun f wf ->
              if wf <> 0. then
                bpf buf "table_add %s_feature%d set_vote %d => weight %d\n" name
                  f cls (quantize wf))
            w;
          bpf buf "table_add %s_decision set_class %d => bias %d\n" name cls
            (quantize biases.(cls)))
        class_weights
  | Model_ir.Tree { name; root; _ } ->
      let rec walk node level idx =
        match node with
        | Decision_tree.Leaf { distribution } ->
            bpf buf "table_add %s_leaves set_class %d => leaf %d\n" name
              (Homunculus_util.Stats.argmax distribution)
              idx
        | Decision_tree.Split { feature; threshold; left; right } ->
            bpf buf
              "table_add %s_level%d set_vote %d => feature %d le %d\n" name
              level idx feature (quantize threshold);
            walk left (level + 1) (2 * idx);
            walk right (level + 1) ((2 * idx) + 1)
      in
      walk root 0 0
  | Model_ir.Dnn _ ->
      invalid_arg "P4gen.emit_entries: DNNs are not mappable to MATs");
  Buffer.contents buf

let line_count code =
  String.split_on_char '\n' code
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
