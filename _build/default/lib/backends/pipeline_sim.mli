(** Cycle-level simulation of a mapped pipeline under packet load — the role
    the Tungsten/SARA cycle-accurate simulators play in the paper's
    feasibility-testing loop (§3.3).

    The analytical Taurus model gives a mapping's initiation interval (II)
    and pipeline depth; this module drives that pipeline with an arrival
    process and reports what the wire would see: achieved throughput,
    queueing latency percentiles, and drops when the ingress queue overflows
    — i.e. it distinguishes "II = 2 means 0.5 Gpkt/s sustained" from the
    paper's 1 Gpkt/s requirement empirically rather than analytically. *)

type config = {
  ii_cycles : int;  (** one packet accepted every [ii_cycles] *)
  pipeline_cycles : int;  (** depth: cycles from ingress to verdict *)
  clock_ghz : float;
  queue_capacity : int;  (** ingress buffer, in packets *)
}

val config_of_mapping : Taurus.grid -> Taurus.mapping -> config
(** Derive the pipeline parameters of a mapped model (queue capacity 64). *)

type stats = {
  packets_offered : int;
  packets_delivered : int;
  packets_dropped : int;
  mean_latency_ns : float;  (** over delivered packets; 0 when none *)
  p99_latency_ns : float;
  max_queue_depth : int;
  achieved_gpps : float;
      (** delivered packets over the busy interval (first arrival to last
          departure) *)
}

val simulate : config -> arrivals_ns:float array -> stats
(** Deterministic discrete-event run over ascending arrival times.
    @raise Invalid_argument on unsorted arrivals or empty input. *)

val poisson_arrivals :
  Homunculus_util.Rng.t -> rate_gpps:float -> n:int -> float array
(** Memoryless arrival process at the given offered load. *)

val uniform_arrivals : rate_gpps:float -> n:int -> float array
(** Back-to-back line-rate arrivals (the paper's MoonGen full-rate test). *)
