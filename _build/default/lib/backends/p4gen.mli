(** P4-16 code generation for MAT-based switches, following the IIsy mapping
    (paper §4: "we use IIsy as a backend for mapping ML algorithms ... to
    MATs").

    Feature values are quantized into range keys; each model component
    becomes a table whose entries are computed from the trained parameters
    at control-plane install time. The emitted program contains the full
    ingress control flow; table entries themselves ship separately via
    {!emit_entries} (as a P4Runtime-style text dump), matching how IIsy
    splits data plane and control plane. *)

val program_of : Model_ir.t -> P4_ir.program
(** Build the P4 AST for a model under the IIsy mapping rules. Supported:
    KMeans, SVM, Tree (the algorithms IIsy maps); DNNs raise
    [Invalid_argument] — the MAT backend rejects them during candidate
    filtering instead. *)

val emit : Model_ir.t -> string
(** [P4_ir.print (program_of model)] — the P4-16 program: headers, parser,
    per-component tables, ingress apply chain, deparser. *)

val emit_entries : ?entries_per_feature:int -> Model_ir.t -> string
(** Control-plane table entries derived from the trained parameters:
    per-cluster range cells for KMeans, per-feature vote entries for SVMs,
    per-level branch entries for trees. *)

val line_count : string -> int
