(** Analytical resource/power model of the FPGA testbed (Xilinx Alveo U250
    bump-in-the-wire, paper §5.2 Table 5).

    Calibrated once against Table 5's loopback row and slopes: LUTs grow
    linearly with model parameters (the paper notes "LUTs store the
    parameters of a model in FPGA"), flip-flops track LUTs at a fixed ratio,
    BRAM stays at the loopback shell's 4.15%, and power follows LUT
    utilization at ~1.5 W per LUT percentage point. *)

type device = {
  name : string;
  loopback_lut_pct : float;
  loopback_ff_pct : float;
  loopback_bram_pct : float;
  loopback_power_w : float;
  lut_pct_per_param : float;
  lut_pct_per_layer : float;  (** control/datapath overhead per stage *)
  ff_per_lut : float;
  watt_per_lut_pct : float;
  clock_ghz : float;
}

val alveo_u250 : device

type report = {
  lut_pct : float;
  ff_pct : float;
  bram_pct : float;
  power_w : float;
}

val loopback_report : device -> report
(** The shell alone (Table 5 row 1). *)

val report : device -> Model_ir.t -> report

val estimate : device -> Resource.perf -> Model_ir.t -> Resource.verdict
(** Usages carry "LUT", "FF", "BRAM" as percentages of the device (available
    = 100). Latency follows the same pipeline-depth logic as Taurus at the
    FPGA clock; throughput is one packet per cycle at that clock. *)
