module Mathx = Homunculus_util.Mathx

type device = {
  n_tables : int;
  entries_per_table : int;
  n_stages : int;
  base_latency_ns : float;
  per_stage_latency_ns : float;
  line_rate_gpps : float;
}

let default_device =
  {
    n_tables = 32;
    entries_per_table = 4096;
    n_stages = 12;
    base_latency_ns = 300.;
    per_stage_latency_ns = 10.;
    line_rate_gpps = 1.;
  }

let device_with_tables n =
  if n <= 0 then invalid_arg "Tofino.device_with_tables: n <= 0";
  { default_device with n_tables = n }

let tables_per_stage = 4

let estimate device perf (mapping : Iisy.mapping) =
  let tables = Iisy.n_tables mapping in
  let stages = Mathx.ceil_div (Stdlib.max 1 tables) tables_per_stage in
  let usages =
    [
      Resource.usage ~resource:"MAT" ~used:(float_of_int tables)
        ~available:(float_of_int device.n_tables);
      Resource.usage ~resource:"entries"
        ~used:(float_of_int (Iisy.max_entries mapping))
        ~available:(float_of_int device.entries_per_table);
      Resource.usage ~resource:"stages" ~used:(float_of_int stages)
        ~available:(float_of_int device.n_stages);
    ]
  in
  let latency_ns =
    device.base_latency_ns +. (float_of_int stages *. device.per_stage_latency_ns)
  in
  Resource.check perf ~usages ~latency_ns ~throughput_gpps:device.line_rate_gpps

let estimate_model device perf model =
  (* With the model in hand we can run real stage allocation over the table
     dependency graph instead of the flat tables/4 approximation. *)
  let mapping = Iisy.map_model model in
  let base = estimate device perf mapping in
  let graph = Iisy.table_graph model in
  let stages_needed =
    match
      Stage_alloc.allocate ~n_stages:device.n_stages ~tables_per_stage graph
    with
    | Ok allocation -> allocation.Stage_alloc.stages_used
    | Error (Stage_alloc.Capacity_exceeded { needed_stages; _ }) -> needed_stages
    | Error _ -> device.n_stages + 1 (* malformed graphs never fit *)
  in
  let usages =
    List.map
      (fun u ->
        if String.equal u.Resource.resource "stages" then
          Resource.usage ~resource:"stages" ~used:(float_of_int stages_needed)
            ~available:(float_of_int device.n_stages)
        else u)
      base.Resource.usages
  in
  let latency_ns =
    device.base_latency_ns
    +. (float_of_int stages_needed *. device.per_stage_latency_ns)
  in
  Resource.check perf ~usages ~latency_ns
    ~throughput_gpps:device.line_rate_gpps

let mats_used verdict =
  match Resource.find_usage verdict "MAT" with
  | Some u -> int_of_float u.Resource.used
  | None -> 0
