(** Verilog emission for the FPGA path.

    On the authors' testbed, generated Spatial is compiled to Verilog and
    downloaded to the Alveo U250 (paper §5.2: "compiled to Verilog using the
    Spatial compiler"). This backend emits the equivalent RTL directly: one
    pipelined module per dense layer (a MAC array with registered outputs,
    weights as fixed-point localparam ROMs) plus a top module chaining the
    stages, with valid-bit handshaking matching the II = 1 streaming
    design. *)

val fixed_point_bits : int
(** 32-bit Q16.16, matching the Spatial backend's [FixPt] type. *)

val quantize : float -> int
(** Value to Q16.16 two's complement (clamped). *)

val emit_layer : name:string -> Model_ir.dnn_layer -> string
(** One layer module: input/output buses, weight/bias ROMs, MAC generate
    block, activation, output register. *)

val emit : Model_ir.t -> string
(** The full design: all layer modules plus the top-level pipeline module.
    DNNs only — classical models deploy through the MAT path.
    @raise Invalid_argument on non-DNN models. *)

val module_count : string -> int
(** Number of [module] declarations in emitted RTL (sanity checks). *)
