(** N2Net-style weight binarization (Siracusano & Bifulco; paper §2).

    N2Net runs neural networks on MAT switches by "truncating model weights
    to a single bit value. Doing so impacts achievable model accuracy; but,
    the models can now run at line speed." This pass performs the standard
    XNOR-Net-style transformation at the IR level: each weight row becomes
    sign bits times one per-neuron scale (alpha = mean |w|), so a dot product
    reduces to popcount logic that MATs can host. Pair with
    {!Inference.predict} to quantify the accuracy cost before deploying. *)

val binarize_dnn : Model_ir.t -> Model_ir.t
(** Replace every weight by [sign(w) * alpha_neuron]; biases are kept at full
    precision (they live in action data, not in the crossbar).
    @raise Invalid_argument on non-DNN models. *)

val binary_fraction : Model_ir.t -> float
(** Fraction of weights whose magnitude already equals their row's scale —
    1.0 after {!binarize_dnn}, used to detect binarized models. *)

val mats_for_binarized : Model_ir.t -> int
(** MAT cost of the binarized network under the IIsy/N2Net rule (one table
    per 8 binary MACs per layer) — equals
    [Iisy.n_tables (Iisy.map_model (binarize_dnn m))]. *)

val accuracy_cost :
  Model_ir.t -> x:float array array -> y:int array -> float * float
(** [(full_precision_accuracy, binarized_accuracy)] on the given labeled
    set. *)
