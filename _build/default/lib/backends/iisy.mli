(** IIsy-style mappings of classical ML models onto match-action tables
    (Xiong & Zilberman, HotNets'19), used by Homunculus as the Tofino-class
    backend (paper §4, §5.2.2).

    Mapping rules quoted from the paper:
    - KMeans: one MAT per cluster; fewer tables force coarser clusterings.
    - SVM: one MAT per feature plus a decision table; when tables run out,
      the least impactful features are dropped until the model fits.
    - Decision trees: one MAT per tree level plus a leaf table.
    - DNNs: binarized N2Net-style mapping, ~one MAT per 8 MACs per layer —
      feasible only for very small networks (a single hand-built AD layer
      costs ~12 MATs). *)

type table = {
  name : string;
  entries : int;  (** TCAM/SRAM entries required *)
  purpose : string;
}

type mapping = { tables : table list }

val n_tables : mapping -> int
val max_entries : mapping -> int
(** Largest single table; 0 for empty mappings. *)

val map_model : ?entries_per_feature:int -> Model_ir.t -> mapping
(** Apply the per-algorithm rule above. [entries_per_feature] controls the
    quantization granularity of range-match tables (default 64). *)

val table_graph : ?entries_per_feature:int -> Model_ir.t -> Stage_alloc.table list
(** The same tables as {!map_model} (same names, same order) annotated with
    their match-after-action dependencies: KMeans cluster tables are
    independent; SVM feature tables are independent but the decision table
    reads every vote; each tree level waits on the previous one; binarized
    DNN slices wait on the whole previous layer. *)

val conform_kmeans :
  Homunculus_ml.Kmeans.t -> table_budget:int -> Homunculus_ml.Kmeans.t
(** Coarsen a KMeans model by merging closest clusters until one MAT per
    cluster fits in [table_budget] (Fig. 7's K5...K1 sweep).
    @raise Invalid_argument if [table_budget < 1]. *)

val drop_svm_features :
  Model_ir.t -> table_budget:int -> Model_ir.t * int array
(** For an SVM whose per-feature tables exceed the budget, zero out the
    smallest-magnitude features until [n_features + 1 <= budget]; returns the
    conformed model and the indices of the dropped features.
    @raise Invalid_argument on non-SVM models or budgets < 2. *)
