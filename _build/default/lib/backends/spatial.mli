(** Template-based Spatial code generation (paper §3.3, Fig. 5).

    Mirrors the paper's methodology: parameterized templates for dot
    products (a [Reduce] over element-wise [map] multiplication) are nested
    inside a [Foreach] over output neurons to form a dense layer; layers are
    stitched together through double-buffered SRAM blocks; trained weights
    are burned into on-chip LUT initializers. The emitted text targets the
    Spatial dialect used by Taurus (Koeplinger et al., PLDI'18). *)

val program_of : Model_ir.t -> Spatial_ir.program
(** Build the Spatial AST for a model: DNNs use the layer template;
    KMeans/SVM reuse it for distance/margin computation; trees unroll into
    nested mux chains. *)

val emit : Model_ir.t -> string
(** [Spatial_ir.print (program_of model)] — the full source file (imports,
    Accel block, per-layer pipelines). *)

val emit_bundle : name:string -> Model_ir.t list -> string
(** One Spatial program hosting several models on the same switch (the
    app-chaining of Table 3): weight tables are namespaced per instance
    (duplicate model names get an index suffix), and the streaming loop runs
    each model's pipeline in sequence on the packet's features, writing one
    verdict register per instance. @raise Invalid_argument on []. *)

val emit_dot_product_template : n:int -> string
(** The primitive building block on its own, for documentation and tests. *)

val line_count : string -> int
(** Number of non-empty lines in generated code (used by size assertions). *)
