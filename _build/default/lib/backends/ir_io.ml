module Json = Homunculus_util.Json
module Decision_tree = Homunculus_ml.Decision_tree

(* Hexadecimal float literals keep full precision through the text format. *)
let float_to_json v = Json.String (Printf.sprintf "%h" v)

let float_of_json = function
  | Json.String s -> (
      match float_of_string_opt s with
      | Some v -> v
      | None -> invalid_arg ("Ir_io: bad float literal " ^ s))
  | Json.Number v -> v
  | Json.Null | Json.Bool _ | Json.List _ | Json.Object _ ->
      invalid_arg "Ir_io: expected a float"

let vector_to_json v = Json.List (Array.to_list (Array.map float_to_json v))

let vector_of_json j =
  Array.of_list (List.map float_of_json (Json.to_list j))

let matrix_to_json m = Json.List (Array.to_list (Array.map vector_to_json m))

let matrix_of_json j =
  Array.of_list (List.map vector_of_json (Json.to_list j))

let layer_to_json (l : Model_ir.dnn_layer) =
  Json.Object
    [
      ("n_in", Json.Number (float_of_int l.Model_ir.n_in));
      ("n_out", Json.Number (float_of_int l.Model_ir.n_out));
      ("activation", Json.String l.Model_ir.activation);
      ("weights", matrix_to_json l.Model_ir.weights);
      ("biases", vector_to_json l.Model_ir.biases);
    ]

let layer_of_json j =
  {
    Model_ir.n_in = Json.to_int (Json.member j "n_in");
    n_out = Json.to_int (Json.member j "n_out");
    activation = Json.get_string (Json.member j "activation");
    weights = matrix_of_json (Json.member j "weights");
    biases = vector_of_json (Json.member j "biases");
  }

let rec node_to_json = function
  | Decision_tree.Leaf { distribution } ->
      Json.Object [ ("leaf", vector_to_json distribution) ]
  | Decision_tree.Split { feature; threshold; left; right } ->
      Json.Object
        [
          ("feature", Json.Number (float_of_int feature));
          ("threshold", float_to_json threshold);
          ("left", node_to_json left);
          ("right", node_to_json right);
        ]

let rec node_of_json j =
  match Json.member_opt j "leaf" with
  | Some dist -> Decision_tree.Leaf { distribution = vector_of_json dist }
  | None ->
      Decision_tree.Split
        {
          feature = Json.to_int (Json.member j "feature");
          threshold = float_of_json (Json.member j "threshold");
          left = node_of_json (Json.member j "left");
          right = node_of_json (Json.member j "right");
        }

let to_json model =
  match model with
  | Model_ir.Dnn { name; layers } ->
      Json.Object
        [
          ("algorithm", Json.String "dnn");
          ("name", Json.String name);
          ("layers", Json.List (Array.to_list (Array.map layer_to_json layers)));
        ]
  | Model_ir.Kmeans { name; centroids } ->
      Json.Object
        [
          ("algorithm", Json.String "kmeans");
          ("name", Json.String name);
          ("centroids", matrix_to_json centroids);
        ]
  | Model_ir.Svm { name; class_weights; biases } ->
      Json.Object
        [
          ("algorithm", Json.String "svm");
          ("name", Json.String name);
          ("class_weights", matrix_to_json class_weights);
          ("biases", vector_to_json biases);
        ]
  | Model_ir.Tree { name; root; n_features; n_classes } ->
      Json.Object
        [
          ("algorithm", Json.String "tree");
          ("name", Json.String name);
          ("n_features", Json.Number (float_of_int n_features));
          ("n_classes", Json.Number (float_of_int n_classes));
          ("root", node_to_json root);
        ]

let of_json j =
  let name = Json.get_string (Json.member j "name") in
  let model =
    match Json.get_string (Json.member j "algorithm") with
    | "dnn" ->
        Model_ir.Dnn
          {
            name;
            layers =
              Array.of_list
                (List.map layer_of_json (Json.to_list (Json.member j "layers")));
          }
    | "kmeans" ->
        Model_ir.Kmeans { name; centroids = matrix_of_json (Json.member j "centroids") }
    | "svm" ->
        Model_ir.Svm
          {
            name;
            class_weights = matrix_of_json (Json.member j "class_weights");
            biases = vector_of_json (Json.member j "biases");
          }
    | "tree" ->
        Model_ir.Tree
          {
            name;
            root = node_of_json (Json.member j "root");
            n_features = Json.to_int (Json.member j "n_features");
            n_classes = Json.to_int (Json.member j "n_classes");
          }
    | other -> invalid_arg ("Ir_io: unknown algorithm " ^ other)
  in
  match Model_ir.validate model with
  | Ok () -> model
  | Error msg -> invalid_arg ("Ir_io: invalid model: " ^ msg)

let save ~path model =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json model));
      Out_channel.output_char oc '\n')

let load ~path =
  let text = In_channel.with_open_text path In_channel.input_all in
  of_json (Json.of_string text)
