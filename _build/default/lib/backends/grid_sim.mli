(** Cycle-accurate simulation of a model's stage pipeline on the MapReduce
    grid — the per-stage view the Tungsten simulator provides on the
    authors' testbed, complementing {!Pipeline_sim}'s queue-level model.

    Each pipeline stage (one DNN layer, or the single compute block of a
    classical model) is a unit with an initiation interval and a latency;
    double-buffered SRAM between stages lets stage [s] start packet [p+1]
    while stage [s+1] still holds packet [p]. The simulator computes exact
    enter/leave cycles per (packet, stage) with the classic pipeline
    recurrence and reports end-to-end latency, steady-state throughput, and
    per-stage occupancy — validating the analytical model in {!Taurus}. *)

type stage = {
  label : string;
  latency_cycles : int;  (** time in the stage *)
  ii_cycles : int;  (** min cycles between successive packets entering *)
}

val stages_of_model : Taurus.grid -> Model_ir.t -> stage list
(** One stage per {!Taurus.stage_timings} entry, II = the mapping's II. *)

type trace

val run : stage list -> n_packets:int -> trace
(** Drive [n_packets] back-to-back packets (one offered per cycle).
    @raise Invalid_argument on empty stages, non-positive packets, or
    non-positive stage parameters. *)

val total_cycles : trace -> int
(** Cycle at which the last packet leaves the last stage. *)

val packet_latency : trace -> int -> int
(** End-to-end cycles for packet [i] (0-based). @raise Invalid_argument
    when out of range. *)

val steady_state_interval : trace -> float
(** Average cycles between consecutive departures once the pipeline is
    full — equals the bottleneck stage's II. *)

val stage_occupancy : trace -> (string * float) list
(** Fraction of simulated cycles each stage spent busy. *)

val agrees_with_analytical : Taurus.grid -> Model_ir.t -> bool
(** Cross-check: first-packet latency equals the analytical
    [pipeline_cycles] and the steady-state interval equals the mapping's
    II. The test suite pins this for all model families. *)
