(** Analytical model of the Taurus MapReduce block (Swamy et al., ASPLOS'22):
    a Plasticine-style CGRA of compute units (CUs) and memory units (MUs)
    laid out as a [rows x cols] checkerboard, programmed through Spatial.

    This module answers the three questions the optimization core asks of a
    backend (paper §3.3): resource usage, latency/throughput, feasibility —
    the role played by the SARA/Tungsten cycle-accurate simulators on the
    authors' testbed.

    Cost model (constants fixed once in {!default_grid}, see DESIGN.md):
    a dense layer (n_in -> n_out) running at initiation interval II = 1
    occupies [ceil(n_in / vec_width) * ceil(n_out / lanes)] CUs (a SIMD
    dot-product tree per pair of output neurons) and
    [ceil(params / mu_words) + buffers_per_layer] MUs (weight storage plus
    double-buffered input/output SRAM). Wide layers are CU-bound; deep
    narrow stacks pay the per-layer buffer tax and become MU-bound — the
    contrast the paper highlights between the two BD models (Table 2). *)

type grid = {
  rows : int;
  cols : int;
  vec_width : int;  (** MAC lanes per CU *)
  lanes : int;  (** output neurons sharing one CU column *)
  mu_words : int;  (** parameters stored per MU *)
  buffers_per_layer : int;  (** double-buffered SRAM blocks between layers *)
  clock_ghz : float;
  overhead_cycles : int;  (** parse/deparse + grid ingress/egress *)
}

val default_grid : grid
(** 16 x 16 grid at 1 GHz: 128 CUs + 128 MUs. *)

val grid_with_size : rows:int -> cols:int -> grid
(** [default_grid] rescaled; @raise Invalid_argument on non-positive dims. *)

val available_cus : grid -> int
val available_mus : grid -> int

type mapping = {
  cus : int;
  mus : int;
  pipeline_cycles : int;  (** end-to-end depth at II = 1 *)
  ii : int;  (** initiation interval after time-multiplexing onto the grid *)
}

val stage_timings : grid -> Model_ir.t -> (string * int) list
(** Per-pipeline-stage latency in cycles [(label, cycles)]; sums to
    {!map_model}'s [pipeline_cycles]. *)

val layer_demands : grid -> Model_ir.t -> (string * int * int) list
(** Per-pipeline-stage resource demands [(label, cus, mus)] before any
    time-multiplexing — one entry per DNN layer, or a single entry for the
    classical algorithms. Sums match {!map_model} at II = 1. *)

val map_model : grid -> Model_ir.t -> mapping
(** Pure resource/timing mapping, before feasibility checks. Models that do
    not fit the grid at II = 1 are time-multiplexed: CU usage is capped at
    the grid size and II grows by the same factor. *)

val estimate : grid -> Resource.perf -> Model_ir.t -> Resource.verdict
(** Full feasibility verdict: usages carry resources "CU" and "MU";
    throughput is [clock / II]; latency is
    [(pipeline_cycles * II + overhead) / clock]. *)

val cus_used : Resource.verdict -> int
val mus_used : Resource.verdict -> int
(** Convenience accessors over the verdict's usage list (0 when absent). *)
