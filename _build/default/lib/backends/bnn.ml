let binarize_layer (l : Model_ir.dnn_layer) =
  let weights =
    Array.map
      (fun row ->
        let n = Array.length row in
        let alpha =
          Array.fold_left (fun acc w -> acc +. Float.abs w) 0. row
          /. float_of_int (Stdlib.max 1 n)
        in
        Array.map (fun w -> if w >= 0. then alpha else -.alpha) row)
      l.Model_ir.weights
  in
  { l with Model_ir.weights }

let binarize_dnn = function
  | Model_ir.Dnn { name; layers } ->
      Model_ir.Dnn { name; layers = Array.map binarize_layer layers }
  | Model_ir.Kmeans _ | Model_ir.Svm _ | Model_ir.Tree _ ->
      invalid_arg "Bnn.binarize_dnn: not a DNN"

let binary_fraction = function
  | Model_ir.Dnn { layers; _ } ->
      let total = ref 0 and binary = ref 0 in
      Array.iter
        (fun (l : Model_ir.dnn_layer) ->
          Array.iter
            (fun row ->
              let n = Array.length row in
              let alpha =
                Array.fold_left (fun acc w -> acc +. Float.abs w) 0. row
                /. float_of_int (Stdlib.max 1 n)
              in
              Array.iter
                (fun w ->
                  incr total;
                  if Float.abs (Float.abs w -. alpha) < 1e-12 then incr binary)
                row)
            l.Model_ir.weights)
        layers;
      if !total = 0 then 0. else float_of_int !binary /. float_of_int !total
  | Model_ir.Kmeans _ | Model_ir.Svm _ | Model_ir.Tree _ -> 0.

let mats_for_binarized model = Iisy.n_tables (Iisy.map_model (binarize_dnn model))

let accuracy_of model ~x ~y =
  let pred = Inference.predict_all model x in
  let correct = ref 0 in
  Array.iteri (fun i p -> if p = y.(i) then incr correct) pred;
  float_of_int !correct /. float_of_int (Array.length y)

let accuracy_cost model ~x ~y =
  (accuracy_of model ~x ~y, accuracy_of (binarize_dnn model) ~x ~y)
