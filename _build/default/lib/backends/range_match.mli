(** Range-to-ternary expansion for TCAM match-action tables.

    MAT hardware matches ternary (value/mask) keys; a range match like
    [100 <= key <= 1200] must be decomposed into aligned power-of-two blocks,
    each one TCAM row. This prefix-expansion pass determines the real entry
    cost of the range tables the IIsy mapping declares — a W-bit range costs
    at most [2W - 2] rows. *)

type ternary = {
  value : int;  (** the cared-about bits, already masked *)
  mask : int;  (** 1 bits participate in the match *)
}

val matches : ternary -> int -> bool
(** [matches t key] — does the TCAM row fire for this key? *)

val expand_range : width:int -> lo:int -> hi:int -> ternary list
(** Minimal prefix cover of the inclusive range [lo, hi] over [width]-bit
    keys, in ascending order of covered values. @raise Invalid_argument
    unless [0 <= lo <= hi < 2^width] and [1 <= width <= 30]. *)

val entry_count : width:int -> lo:int -> hi:int -> int
(** [List.length (expand_range ...)] without building the list. *)

val worst_case : width:int -> int
(** The classic [2 * width - 2] bound ([1] when [width = 1]). *)

val to_string : width:int -> ternary -> string
(** Bit pattern with don't-cares, e.g. ["0110**"]. *)
