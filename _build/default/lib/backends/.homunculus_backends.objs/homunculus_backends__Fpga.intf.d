lib/backends/fpga.mli: Model_ir Resource
