lib/backends/spatial.ml: Array Format Hashtbl Homunculus_ml Homunculus_util List Model_ir Option Printf Spatial_ir Stdlib String
