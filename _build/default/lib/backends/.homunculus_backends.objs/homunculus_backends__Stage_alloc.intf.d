lib/backends/stage_alloc.mli:
