lib/backends/tofino.mli: Iisy Model_ir Resource
