lib/backends/feature_binding.ml: Array Buffer List Printf String
