lib/backends/spatial_ir.ml: Array Buffer Format List Printf Stdlib String
