lib/backends/verilog.mli: Model_ir
