lib/backends/grid_sim.mli: Model_ir Taurus
