lib/backends/p4_ir.mli:
