lib/backends/inference.mli: Model_ir
