lib/backends/p4gen.mli: Model_ir P4_ir
