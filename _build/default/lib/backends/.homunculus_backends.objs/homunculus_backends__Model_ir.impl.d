lib/backends/model_ir.ml: Activation Array Decision_tree Homunculus_ml Homunculus_tensor Kmeans Layer Mat Mlp Printf Svm
