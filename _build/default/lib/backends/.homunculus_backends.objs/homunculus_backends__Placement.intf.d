lib/backends/placement.mli: Model_ir Taurus
