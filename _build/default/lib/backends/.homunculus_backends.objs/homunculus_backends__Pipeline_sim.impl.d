lib/backends/pipeline_sim.ml: Array Homunculus_util Queue Stdlib Taurus
