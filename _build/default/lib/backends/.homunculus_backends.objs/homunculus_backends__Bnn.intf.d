lib/backends/bnn.mli: Model_ir
