lib/backends/fpga.ml: Array Homunculus_ml Model_ir Resource Taurus
