lib/backends/iisy.ml: Array Float Homunculus_ml Homunculus_util List Model_ir Printf Stage_alloc Stdlib
