lib/backends/p4gen.ml: Array Buffer Float Homunculus_ml Homunculus_util List Model_ir P4_ir Printf Range_match Stdlib String
