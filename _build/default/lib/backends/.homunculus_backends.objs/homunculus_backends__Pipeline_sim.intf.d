lib/backends/pipeline_sim.mli: Homunculus_util Taurus
