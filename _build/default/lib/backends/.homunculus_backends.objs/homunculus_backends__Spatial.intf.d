lib/backends/spatial.mli: Model_ir Spatial_ir
