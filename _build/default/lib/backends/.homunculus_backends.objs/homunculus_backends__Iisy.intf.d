lib/backends/iisy.mli: Homunculus_ml Model_ir Stage_alloc
