lib/backends/runtime.ml: Array Float Homunculus_ml Homunculus_util Inference Model_ir
