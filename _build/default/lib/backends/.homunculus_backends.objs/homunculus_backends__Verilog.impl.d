lib/backends/verilog.ml: Array Buffer Float Homunculus_util Int32 List Model_ir Printf String
