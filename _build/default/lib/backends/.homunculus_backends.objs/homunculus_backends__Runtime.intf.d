lib/backends/runtime.mli: Model_ir
