lib/backends/resource.mli: Format
