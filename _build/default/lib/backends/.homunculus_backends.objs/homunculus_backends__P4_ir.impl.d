lib/backends/p4_ir.ml: Buffer List Printf String
