lib/backends/bnn.ml: Array Float Iisy Inference Model_ir Stdlib
