lib/backends/grid_sim.ml: Array Float List Stdlib Taurus
