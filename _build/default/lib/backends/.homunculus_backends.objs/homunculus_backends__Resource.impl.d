lib/backends/resource.ml: Format List Printf String
