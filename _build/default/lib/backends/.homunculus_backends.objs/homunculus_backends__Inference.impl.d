lib/backends/inference.ml: Array Float Homunculus_ml Homunculus_util Model_ir
