lib/backends/tofino.ml: Homunculus_util Iisy List Resource Stage_alloc Stdlib String
