lib/backends/ir_io.mli: Homunculus_util Model_ir
