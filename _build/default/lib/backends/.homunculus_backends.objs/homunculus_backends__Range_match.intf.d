lib/backends/range_match.mli:
