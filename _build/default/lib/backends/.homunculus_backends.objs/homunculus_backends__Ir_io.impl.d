lib/backends/ir_io.ml: Array Homunculus_ml Homunculus_util In_channel List Model_ir Out_channel Printf
