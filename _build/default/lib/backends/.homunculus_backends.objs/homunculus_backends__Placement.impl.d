lib/backends/placement.ml: Array Buffer Char Float List Printf Taurus
