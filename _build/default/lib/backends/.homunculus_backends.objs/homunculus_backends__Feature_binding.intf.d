lib/backends/feature_binding.mli:
