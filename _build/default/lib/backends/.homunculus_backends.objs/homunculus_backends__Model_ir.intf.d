lib/backends/model_ir.mli: Homunculus_ml
