lib/backends/taurus.mli: Model_ir Resource
