lib/backends/spatial_ir.mli: Format
