lib/backends/range_match.ml: List String
