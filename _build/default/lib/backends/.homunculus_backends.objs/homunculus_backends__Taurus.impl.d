lib/backends/taurus.ml: Array Homunculus_ml Homunculus_util List Model_ir Printf Resource Stdlib
