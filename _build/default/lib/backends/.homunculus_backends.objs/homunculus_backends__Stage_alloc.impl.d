lib/backends/stage_alloc.ml: Array Hashtbl List Printf Stdlib String
