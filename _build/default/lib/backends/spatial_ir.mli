(** An abstract syntax for the Spatial dialect the Taurus backend emits.

    The template-based generator (paper §3.3, Fig. 5) composes dot products
    into layers and layers into pipelines; representing those templates as an
    AST instead of raw strings lets the backend build, transform, and analyze
    programs before printing them — e.g. counting parallel lanes, re-rolling
    loops, or fusing pipelines for multi-model schedules. {!Spatial} prints
    this IR. *)

type expr =
  | Var of string
  | Const of float
  | Int_const of int
  | Index of { base : string; indices : expr list }  (** m(i, j) *)
  | Binop of { op : string; lhs : expr; rhs : expr }  (** infix: +, *, - *)
  | Call of { fn : string; args : expr list }  (** max(x, 0.to[T]) *)

type stmt =
  | Comment of string
  | Val of { name : string; value : expr }  (** val name = expr *)
  | Assign of { target : expr; value : expr }
  | Foreach of { var : string; bound : int; par : int; body : stmt list }
  | Reduce of {
      target : string;  (** accumulator register name *)
      var : string;
      bound : int;
      par : int;
      body : expr;  (** per-lane value *)
      combine : string;  (** combining operator, e.g. "+" *)
    }
  | Pipe of stmt list
  | Stream_loop of stmt list  (** the streaming outer loop over packets *)
  | Sram_alloc of { name : string; size : int; buffered : bool }
  | Lut_decl of { name : string; rows : int; cols : int; values : float array array }
  | Raw of string  (** escape hatch for host-interface boilerplate *)

type program = {
  name : string;  (** Spatial object name *)
  fixpt : string;  (** numeric type, e.g. "FixPt[TRUE, _16, _16]" *)
  decls : stmt list;  (** LUTs and other Accel-level declarations *)
  accel : stmt list;  (** the Accel { } body *)
}

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val print : program -> string
(** The complete Spatial source file. *)

(** Template library (Fig. 5's building blocks): *)

val dot_product :
  target:string -> weights:string -> input:string -> row:expr -> n:int -> stmt
(** [Reduce] of [weights(row, j) * input(j)] over [j < n], 8-wide. *)

val dense_layer :
  layer_idx:int ->
  prefix:string ->
  src:string ->
  dst:string ->
  n_in:int ->
  n_out:int ->
  activation:string ->
  stmt
(** [Foreach] over output neurons, each a {!dot_product} plus bias and
    activation — the nesting the paper describes. *)

val count_parallel_lanes : program -> int
(** Total SIMD lanes across every [par] annotation — an IR-level analysis
    the resource estimator can cross-check. *)

val count_statements : program -> int
