module Mathx = Homunculus_util.Mathx
module Decision_tree = Homunculus_ml.Decision_tree

type grid = {
  rows : int;
  cols : int;
  vec_width : int;
  lanes : int;
  mu_words : int;
  buffers_per_layer : int;
  clock_ghz : float;
  overhead_cycles : int;
}

let default_grid =
  {
    rows = 16;
    cols = 16;
    vec_width = 8;
    lanes = 2;
    mu_words = 48;
    buffers_per_layer = 4;
    clock_ghz = 1.0;
    overhead_cycles = 20;
  }

let grid_with_size ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Taurus.grid_with_size: bad dims";
  { default_grid with rows; cols }

(* Checkerboard: half the tiles are CUs, half MUs. *)
let available_cus g = g.rows * g.cols / 2
let available_mus g = g.rows * g.cols / 2

type mapping = { cus : int; mus : int; pipeline_cycles : int; ii : int }

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

(* One dense layer: SIMD dot products across vec_width lanes, a reduction
   tree, activation, and a double-buffered SRAM boundary. *)
let dense_layer_cost g ~n_in ~n_out =
  let cu = Mathx.ceil_div n_in g.vec_width * Mathx.ceil_div n_out g.lanes in
  let params = (n_in * n_out) + n_out in
  let mu = Mathx.ceil_div params g.mu_words + g.buffers_per_layer in
  let cycles = Mathx.ceil_div n_in g.vec_width + log2_ceil (Stdlib.max 2 n_in) + 2 in
  (cu, mu, cycles)

let stage_costs g model =
  match model with
  | Model_ir.Dnn { layers; _ } ->
      Array.to_list layers
      |> List.mapi (fun i l ->
             let cu, mu, cy =
               dense_layer_cost g ~n_in:l.Model_ir.n_in ~n_out:l.Model_ir.n_out
             in
             (Printf.sprintf "layer%d" i, cu, mu, cy))
  | Model_ir.Kmeans { centroids; _ } ->
      (* k parallel distance computations then an argmin tree: the same
         structure as a single dense layer with k outputs. *)
      let k = Array.length centroids in
      let dim = if k = 0 then 0 else Array.length centroids.(0) in
      let cu, mu, cy =
        dense_layer_cost g ~n_in:(Stdlib.max 1 dim) ~n_out:(Stdlib.max 1 k)
      in
      [ ("distances", cu, mu, cy + log2_ceil (Stdlib.max 2 k)) ]
  | Model_ir.Svm { class_weights; _ } ->
      let classes = Array.length class_weights in
      let dim = if classes = 0 then 0 else Array.length class_weights.(0) in
      let cu, mu, cy =
        dense_layer_cost g ~n_in:(Stdlib.max 1 dim) ~n_out:(Stdlib.max 1 classes)
      in
      [ ("margins", cu, mu, cy + log2_ceil (Stdlib.max 2 classes)) ]
  | Model_ir.Tree { root; _ } ->
      (* Comparisons parallelize per level; storage holds thresholds and
         leaf distributions. *)
      let splits = Decision_tree.n_nodes root - Decision_tree.n_leaves root in
      let cu = Stdlib.max 1 (Mathx.ceil_div splits g.vec_width) in
      let mu =
        Mathx.ceil_div (Stdlib.max 1 (Model_ir.param_count model)) g.mu_words + 2
      in
      [ ("comparisons", cu, mu, Decision_tree.depth root + 2) ]

let layer_demands g model =
  List.map (fun (label, cu, mu, _) -> (label, cu, mu)) (stage_costs g model)

let stage_timings g model =
  List.map (fun (label, _, _, cycles) -> (label, cycles)) (stage_costs g model)

let map_model g model =
  let cus, mus, cycles =
    List.fold_left
      (fun (cus, mus, cycles) (_, cu, mu, cy) -> (cus + cu, mus + mu, cycles + cy))
      (0, 0, 0) (stage_costs g model)
  in
  let avail = available_cus g in
  let ii = if cus <= avail then 1 else Mathx.ceil_div cus avail in
  let cus = Stdlib.min cus avail in
  { cus; mus; pipeline_cycles = cycles; ii }

let estimate g perf model =
  let m = map_model g model in
  let usages =
    [
      Resource.usage ~resource:"CU" ~used:(float_of_int m.cus)
        ~available:(float_of_int (available_cus g));
      Resource.usage ~resource:"MU" ~used:(float_of_int m.mus)
        ~available:(float_of_int (available_mus g));
    ]
  in
  let throughput_gpps = g.clock_ghz /. float_of_int m.ii in
  let latency_ns =
    float_of_int ((m.pipeline_cycles * m.ii) + g.overhead_cycles) /. g.clock_ghz
  in
  Resource.check perf ~usages ~latency_ns ~throughput_gpps

let usage_amount verdict name =
  match Resource.find_usage verdict name with
  | Some u -> int_of_float u.Resource.used
  | None -> 0

let cus_used v = usage_amount v "CU"
let mus_used v = usage_amount v "MU"
