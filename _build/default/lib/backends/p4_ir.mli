(** An abstract syntax for the P4-16 programs the MAT backend emits.

    Like {!Spatial_ir} for the Taurus path, representing the generated
    switch program as an AST lets the backend analyze it (table count, key
    widths, worst-case entry budget) and lets multi-model schedules compose
    programs before printing, instead of concatenating strings. The printer
    targets the v1model architecture. *)

type field = { field_name : string; width : int }

type header = { header_name : string; fields : field list }

type match_kind = Exact | Ternary | Range | Lpm

val match_kind_to_string : match_kind -> string

type key = { target : string; kind : match_kind }
(** e.g. [{ target = "meta.feature0_key"; kind = Range }]. *)

type action = {
  action_name : string;
  params : (string * int) list;  (** (name, bit width) *)
  body : string list;  (** statements, printed verbatim *)
}

type table = {
  table_name : string;
  keys : key list;
  action_refs : string list;
  size : int;  (** requested entries *)
}

type apply_stmt =
  | Apply of string  (** table.apply() *)
  | Call of string  (** action or extern invocation *)
  | If_hit of { table : string; then_ : apply_stmt list; else_ : apply_stmt list }

type control = {
  control_name : string;
  actions : action list;
  tables : table list;
  apply : apply_stmt list;
}

type program = {
  program_name : string;
  headers : header list;
  metadata : field list;
  ingress : control;
}

val print : program -> string
(** The complete P4-16 source: includes, header/struct declarations, parser,
    the ingress control, deparser, and the V1Switch instantiation. *)

(** Analyses: *)

val table_count : program -> int
val total_requested_entries : program -> int
val key_bits : table -> program -> int
(** Summed width of a table's match keys (metadata fields and header fields
    are looked up; unknown references count 16 bits). *)

val merge : name:string -> program list -> program
(** One program hosting several models: headers/metadata are unioned by
    name, ingress actions/tables concatenated, apply blocks run in order.
    @raise Invalid_argument on [] or on duplicate table names. *)
