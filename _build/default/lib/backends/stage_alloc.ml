type table = { name : string; depends_on : string list }

type allocation = {
  stage_of : (string * int) list;
  stages_used : int;
  occupancy : int array;
}

type error =
  | Cycle of string list
  | Capacity_exceeded of { needed_stages : int; available : int }
  | Unknown_dependency of { table : string; dependency : string }

let error_to_string = function
  | Cycle names -> "dependency cycle through: " ^ String.concat ", " names
  | Capacity_exceeded { needed_stages; available } ->
      Printf.sprintf "needs %d stages but the pipeline has %d" needed_stages
        available
  | Unknown_dependency { table; dependency } ->
      Printf.sprintf "table %s depends on unknown table %s" table dependency

let check_tables tables =
  let names = List.map (fun t -> t.name) tables in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Stage_alloc: duplicate table names"

(* Levelize: level(t) = 1 + max level of dependencies (0 for roots).
   Memoized DFS with cycle detection. *)
let levelize tables =
  check_tables tables;
  let by_name = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace by_name t.name t) tables;
  let levels = Hashtbl.create 16 in
  let in_progress = Hashtbl.create 16 in
  let exception Found_error of error in
  let rec level_of t =
    match Hashtbl.find_opt levels t.name with
    | Some l -> l
    | None ->
        if Hashtbl.mem in_progress t.name then
          raise
            (Found_error
               (Cycle (Hashtbl.fold (fun n () acc -> n :: acc) in_progress [])));
        Hashtbl.replace in_progress t.name ();
        let l =
          List.fold_left
            (fun acc dep_name ->
              match Hashtbl.find_opt by_name dep_name with
              | Some dep -> Stdlib.max acc (1 + level_of dep)
              | None ->
                  raise
                    (Found_error
                       (Unknown_dependency { table = t.name; dependency = dep_name })))
            0 t.depends_on
        in
        Hashtbl.remove in_progress t.name;
        Hashtbl.replace levels t.name l;
        l
  in
  match List.map (fun t -> (t, level_of t)) tables with
  | leveled -> Ok leveled
  | exception Found_error e -> Error e

let allocate ~n_stages ~tables_per_stage tables =
  if n_stages <= 0 || tables_per_stage <= 0 then
    invalid_arg "Stage_alloc.allocate: non-positive limits";
  match levelize tables with
  | Error e -> Error e
  | Ok leveled ->
      (* Process in level order; place each table in the earliest stage that
         is after all dependencies and still has room. *)
      let sorted =
        List.stable_sort (fun (_, l1) (_, l2) -> compare l1 l2) leveled
      in
      let stage_of_table = Hashtbl.create 16 in
      let occupancy = Array.make n_stages 0 in
      let exception Out_of_stages of int in
      let place (t, _level) =
        let earliest =
          List.fold_left
            (fun acc dep -> Stdlib.max acc (1 + Hashtbl.find stage_of_table dep))
            0 t.depends_on
        in
        let rec find stage =
          if stage >= n_stages then raise (Out_of_stages (stage + 1))
          else if occupancy.(stage) < tables_per_stage then stage
          else find (stage + 1)
        in
        let stage = find earliest in
        occupancy.(stage) <- occupancy.(stage) + 1;
        Hashtbl.replace stage_of_table t.name stage
      in
      (match List.iter place sorted with
      | () ->
          let stages_used =
            1
            + Hashtbl.fold (fun _ s acc -> Stdlib.max acc s) stage_of_table (-1)
          in
          let stages_used = Stdlib.max 0 stages_used in
          Ok
            {
              stage_of =
                List.map (fun t -> (t.name, Hashtbl.find stage_of_table t.name)) tables;
              stages_used;
              occupancy = Array.sub occupancy 0 stages_used;
            }
      | exception Out_of_stages needed ->
          Error (Capacity_exceeded { needed_stages = needed; available = n_stages }))

let critical_path tables =
  match levelize tables with
  | Ok [] -> 0
  | Ok leveled -> 1 + List.fold_left (fun acc (_, l) -> Stdlib.max acc l) 0 leveled
  | Error e -> invalid_arg ("Stage_alloc.critical_path: " ^ error_to_string e)

let independent names = List.map (fun name -> { name; depends_on = [] }) names

let chain names =
  let rec go prev = function
    | [] -> []
    | name :: rest ->
        { name; depends_on = (match prev with None -> [] | Some p -> [ p ]) }
        :: go (Some name) rest
  in
  go None names
