(** JSON persistence for trained models.

    A production compiler separates search from deployment: the optimization
    core emits a model artifact once, and the backend generators (or a later
    [homc] invocation) consume it. Weights are serialized in full double
    precision via hexadecimal float literals, so save/load is bit-exact. *)

module Json = Homunculus_util.Json

val to_json : Model_ir.t -> Json.t
val of_json : Json.t -> Model_ir.t
(** @raise Invalid_argument on malformed documents; the result additionally
    passes {!Model_ir.validate}. *)

val save : path:string -> Model_ir.t -> unit
val load : path:string -> Model_ir.t
(** @raise Sys_error on I/O failure. *)
