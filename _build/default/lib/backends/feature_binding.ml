type source =
  | Header_field of { header : string; field : string; width : int }
  | Register of { name : string; update : string; width : int }
  | Computed of { expr : string; width : int }

type binding = { feature : string; source : source; scale : float }

type t = binding list

let header header field width = Header_field { header; field; width }

let builtin feature =
  let b source scale = Some { feature; source; scale } in
  match feature with
  (* IoT traffic classification (Iot.feature_names). *)
  | "frame_size" -> b (header "ipv4" "totalLen" 16) 1.
  | "ip_proto" -> b (header "ipv4" "protocol" 8) 1.
  | "ttl" -> b (header "ipv4" "ttl" 8) 1.
  | "src_port_bucket" ->
      b (Computed { expr = "hdr.l4.srcPort >> 12"; width = 4 }) 1.
  | "dst_port_bucket" ->
      b (Computed { expr = "hdr.l4.dstPort >> 12"; width = 4 }) 1.
  | "inter_arrival_ms" ->
      b
        (Register
           {
             name = "last_seen_us";
             update = "delta = now_us - last_seen_us[flow]; last_seen_us[flow] = now_us";
             width = 32;
           })
        1e-3
  | "payload_entropy" ->
      b (Computed { expr = "entropy_estimate(pkt.payload)"; width = 8 }) (1. /. 32.)
  (* NSL-KDD anomaly detection (Nslkdd.feature_names). *)
  | "duration" ->
      b
        (Register
           {
             name = "conn_start_us";
             update = "duration = now_us - conn_start_us[flow]";
             width = 32;
           })
        1e-6
  | "log_src_bytes" ->
      b (Computed { expr = "log2(conn_src_bytes[flow])"; width = 8 }) (1. /. 1.4427)
  | "log_dst_bytes" ->
      b (Computed { expr = "log2(conn_dst_bytes[flow])"; width = 8 }) (1. /. 1.4427)
  | "protocol" -> b (header "ipv4" "protocol" 8) 1.
  | "host_count" ->
      b
        (Register
           { name = "host_conn_count"; update = "host_conn_count[dst] += 1"; width = 16 })
        1.
  | "srv_count" ->
      b
        (Register
           { name = "srv_conn_count"; update = "srv_conn_count[dst_port] += 1"; width = 16 })
        1.
  | "serror_rate" ->
      b
        (Computed { expr = "syn_err_count[dst] / host_conn_count[dst]"; width = 8 })
        (1. /. 256.)
  | _ ->
      (* Botnet flowmarker bins: pl_bin<i> / ipt_bin<i> register arrays. *)
      let try_prefix prefix register =
        if
          String.length feature > String.length prefix
          && String.sub feature 0 (String.length prefix) = prefix
        then
          match
            int_of_string_opt
              (String.sub feature (String.length prefix)
                 (String.length feature - String.length prefix))
          with
          | Some i ->
              Some
                {
                  feature;
                  source =
                    Register
                      {
                        name = register;
                        update = Printf.sprintf "%s[flow][%d] += 1" register i;
                        width = 16;
                      };
                  scale = 1.;
                }
          | None -> None
        else None
      in
      (match try_prefix "pl_bin" "pl_hist" with
      | Some _ as r -> r
      | None -> try_prefix "ipt_bin" "ipt_hist")

let placeholder feature =
  {
    feature;
    source = Computed { expr = "/* UNBOUND: " ^ feature ^ " */ 0"; width = 16 };
    scale = 1.;
  }

let for_features names =
  Array.to_list names
  |> List.map (fun feature ->
         match builtin feature with
         | Some b -> b
         | None -> placeholder feature)

let lookup t feature =
  List.find_opt (fun b -> String.equal b.feature feature) t

let is_placeholder b =
  match b.source with
  | Computed { expr; _ } ->
      String.length expr >= 11 && String.sub expr 0 11 = "/* UNBOUND:"
  | Header_field _ | Register _ -> false

let validate t ~feature_names =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iter
    (fun name ->
      match List.filter (fun b -> String.equal b.feature name) t with
      | [] -> problem "feature '%s' has no binding" name
      | [ b ] -> if is_placeholder b then problem "feature '%s' is unbound" name
      | multiple -> problem "feature '%s' bound %d times" name (List.length multiple))
    feature_names;
  match List.rev !problems with [] -> Ok () | ps -> Error ps

let emit_p4_metadata t =
  let buf = Buffer.create 1024 in
  let registers =
    List.filter_map
      (fun b ->
        match b.source with
        | Register { name; width; _ } -> Some (name, width)
        | Header_field _ | Computed _ -> None)
      t
    |> List.sort_uniq compare
  in
  List.iter
    (fun (name, width) ->
      Printf.bprintf buf "register<bit<%d>>(65536) %s;\n" width name)
    registers;
  if registers <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "action extract_features() {\n";
  List.iteri
    (fun i b ->
      let rhs =
        match b.source with
        | Header_field { header; field; _ } -> Printf.sprintf "hdr.%s.%s" header field
        | Register { name; update; _ } ->
            Printf.bprintf buf "  // %s\n" update;
            Printf.sprintf "%s.read(flow_hash)" name
        | Computed { expr; _ } -> expr
      in
      if b.scale = 1. then
        Printf.bprintf buf "  meta.feature%d_key = (bit<16>) (%s);\n" i rhs
      else
        Printf.bprintf buf "  meta.feature%d_key = (bit<16>) ((%s) * %g);\n" i rhs
          b.scale)
    t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
