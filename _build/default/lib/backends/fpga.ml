type device = {
  name : string;
  loopback_lut_pct : float;
  loopback_ff_pct : float;
  loopback_bram_pct : float;
  loopback_power_w : float;
  lut_pct_per_param : float;
  lut_pct_per_layer : float;
  ff_per_lut : float;
  watt_per_lut_pct : float;
  clock_ghz : float;
}

let alveo_u250 =
  {
    name = "alveo-u250";
    loopback_lut_pct = 5.36;
    loopback_ff_pct = 3.64;
    loopback_bram_pct = 4.15;
    loopback_power_w = 15.131;
    lut_pct_per_param = 0.004;
    lut_pct_per_layer = 0.08;
    ff_per_lut = 0.55;
    watt_per_lut_pct = 1.54;
    clock_ghz = 0.322;
  }

type report = {
  lut_pct : float;
  ff_pct : float;
  bram_pct : float;
  power_w : float;
}

let loopback_report d =
  {
    lut_pct = d.loopback_lut_pct;
    ff_pct = d.loopback_ff_pct;
    bram_pct = d.loopback_bram_pct;
    power_w = d.loopback_power_w;
  }

let n_stages model =
  match model with
  | Model_ir.Dnn { layers; _ } -> Array.length layers
  | Model_ir.Kmeans _ | Model_ir.Svm _ -> 1
  | Model_ir.Tree { root; _ } -> Homunculus_ml.Decision_tree.depth root

let report d model =
  let params = float_of_int (Model_ir.param_count model) in
  let stages = float_of_int (n_stages model) in
  let delta_lut =
    (d.lut_pct_per_param *. params) +. (d.lut_pct_per_layer *. stages)
  in
  {
    lut_pct = d.loopback_lut_pct +. delta_lut;
    ff_pct = d.loopback_ff_pct +. (d.ff_per_lut *. delta_lut);
    bram_pct = d.loopback_bram_pct;
    power_w = d.loopback_power_w +. (d.watt_per_lut_pct *. delta_lut);
  }

let estimate d perf model =
  let r = report d model in
  let usages =
    [
      Resource.usage ~resource:"LUT" ~used:r.lut_pct ~available:100.;
      Resource.usage ~resource:"FF" ~used:r.ff_pct ~available:100.;
      Resource.usage ~resource:"BRAM" ~used:r.bram_pct ~available:100.;
    ]
  in
  (* Pipeline depth: reuse the Taurus per-layer timing at the FPGA clock. *)
  let taurus_grid = { Taurus.default_grid with Taurus.clock_ghz = d.clock_ghz } in
  let m = Taurus.map_model taurus_grid model in
  let latency_ns =
    float_of_int (m.Taurus.pipeline_cycles + taurus_grid.Taurus.overhead_cycles)
    /. d.clock_ghz
  in
  Resource.check perf ~usages ~latency_ns ~throughput_gpps:d.clock_ghz
