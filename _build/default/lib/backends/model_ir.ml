open Homunculus_ml
open Homunculus_tensor

type dnn_layer = {
  n_in : int;
  n_out : int;
  activation : string;
  weights : float array array;
  biases : float array;
}

type t =
  | Dnn of { name : string; layers : dnn_layer array }
  | Kmeans of { name : string; centroids : float array array }
  | Svm of {
      name : string;
      class_weights : float array array;
      biases : float array;
    }
  | Tree of {
      name : string;
      root : Decision_tree.node;
      n_features : int;
      n_classes : int;
    }

let name = function
  | Dnn { name; _ } | Kmeans { name; _ } | Svm { name; _ } | Tree { name; _ } ->
      name

let with_name t name =
  match t with
  | Dnn d -> Dnn { d with name }
  | Kmeans k -> Kmeans { k with name }
  | Svm s -> Svm { s with name }
  | Tree tr -> Tree { tr with name }

let map_parameters f t =
  let map_matrix = Array.map (Array.map f) in
  match t with
  | Dnn d ->
      let map_layer l =
        { l with weights = map_matrix l.weights; biases = Array.map f l.biases }
      in
      Dnn { d with layers = Array.map map_layer d.layers }
  | Kmeans k -> Kmeans { k with centroids = map_matrix k.centroids }
  | Svm s ->
      Svm
        {
          s with
          class_weights = map_matrix s.class_weights;
          biases = Array.map f s.biases;
        }
  | Tree tr ->
      let rec map_node = function
        | Decision_tree.Leaf _ as leaf -> leaf
        | Decision_tree.Split { feature; threshold; left; right } ->
            Decision_tree.Split
              {
                feature;
                threshold = f threshold;
                left = map_node left;
                right = map_node right;
              }
      in
      Tree { tr with root = map_node tr.root }

(* Fold x' = (x - mu) / sigma into the model's first linear stage:
   sum_j w_ij (x_j - mu_j) / sigma_j + b_i
   = sum_j (w_ij / sigma_j) x_j + (b_i - sum_j w_ij mu_j / sigma_j). *)
let fold_standardization ~mean ~stddev t =
  let d =
    match t with
    | Dnn { layers; _ } -> if Array.length layers = 0 then 0 else layers.(0).n_in
    | Kmeans { centroids; _ } ->
        if Array.length centroids = 0 then 0 else Array.length centroids.(0)
    | Svm { class_weights; _ } ->
        if Array.length class_weights = 0 then 0
        else Array.length class_weights.(0)
    | Tree { n_features; _ } -> n_features
  in
  if Array.length mean <> d || Array.length stddev <> d then
    invalid_arg "Model_ir.fold_standardization: dimension mismatch";
  Array.iter
    (fun s ->
      if s <= 0. then
        invalid_arg "Model_ir.fold_standardization: non-positive stddev")
    stddev;
  let fold_linear weights biases =
    let weights' =
      Array.map (fun row -> Array.mapi (fun j w -> w /. stddev.(j)) row) weights
    in
    let biases' =
      Array.mapi
        (fun i b ->
          let shift = ref 0. in
          Array.iteri
            (fun j w -> shift := !shift +. (w *. mean.(j) /. stddev.(j)))
            weights.(i);
          b -. !shift)
        biases
    in
    (weights', biases')
  in
  match t with
  | Dnn { name; layers } ->
      if Array.length layers = 0 then t
      else
        let first = layers.(0) in
        let weights, biases = fold_linear first.weights first.biases in
        let layers = Array.copy layers in
        layers.(0) <- { first with weights; biases };
        Dnn { name; layers }
  | Svm { name; class_weights; biases } ->
      let class_weights, biases = fold_linear class_weights biases in
      Svm { name; class_weights; biases }
  | Kmeans { name; centroids } ->
      Kmeans
        {
          name;
          centroids =
            Array.map
              (Array.mapi (fun j c -> (c *. stddev.(j)) +. mean.(j)))
              centroids;
        }
  | Tree { name; root; n_features; n_classes } ->
      let rec unfold = function
        | Decision_tree.Leaf _ as leaf -> leaf
        | Decision_tree.Split { feature; threshold; left; right } ->
            Decision_tree.Split
              {
                feature;
                threshold = (threshold *. stddev.(feature)) +. mean.(feature);
                left = unfold left;
                right = unfold right;
              }
      in
      Tree { name; root = unfold root; n_features; n_classes }

let algorithm = function
  | Dnn _ -> "dnn"
  | Kmeans _ -> "kmeans"
  | Svm _ -> "svm"
  | Tree _ -> "tree"

let input_dim = function
  | Dnn { layers; _ } ->
      if Array.length layers = 0 then 0 else layers.(0).n_in
  | Kmeans { centroids; _ } ->
      if Array.length centroids = 0 then 0 else Array.length centroids.(0)
  | Svm { class_weights; _ } ->
      if Array.length class_weights = 0 then 0
      else Array.length class_weights.(0)
  | Tree { n_features; _ } -> n_features

let output_dim = function
  | Dnn { layers; _ } ->
      let n = Array.length layers in
      if n = 0 then 0 else layers.(n - 1).n_out
  | Kmeans { centroids; _ } -> Array.length centroids
  | Svm { class_weights; _ } -> Array.length class_weights
  | Tree { n_classes; _ } -> n_classes

let param_count = function
  | Dnn { layers; _ } ->
      Array.fold_left
        (fun acc l -> acc + (l.n_in * l.n_out) + l.n_out)
        0 layers
  | Kmeans { centroids; _ } ->
      Array.fold_left (fun acc c -> acc + Array.length c) 0 centroids
  | Svm { class_weights; biases; _ } ->
      Array.fold_left (fun acc w -> acc + Array.length w) 0 class_weights
      + Array.length biases
  | Tree { root; n_classes; _ } ->
      (* One threshold per split, one distribution per leaf. *)
      let splits = Decision_tree.n_nodes root - Decision_tree.n_leaves root in
      splits + (Decision_tree.n_leaves root * n_classes)

let dnn_layer_dims = function
  | Dnn { layers; _ } ->
      if Array.length layers = 0 then [||]
      else
        Array.append [| layers.(0).n_in |] (Array.map (fun l -> l.n_out) layers)
  | Kmeans _ | Svm _ | Tree _ ->
      invalid_arg "Model_ir.dnn_layer_dims: not a DNN"

let of_mlp ~name mlp =
  let layers =
    Array.map
      (fun l ->
        let w = l.Layer.w in
        {
          n_in = Layer.n_in l;
          n_out = Layer.n_out l;
          activation = Activation.name l.Layer.act;
          weights = Array.init w.Mat.rows (fun i -> Mat.row w i);
          biases = Array.copy l.Layer.b;
        })
      (Mlp.layers mlp)
  in
  Dnn { name; layers }

let of_kmeans ~name km = Kmeans { name; centroids = Kmeans.centroids km }

let of_svm ~name svm =
  Svm
    {
      name;
      class_weights = Svm.class_weights svm;
      biases = Svm.class_biases svm;
    }

let validate t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match t with
  | Dnn { layers; _ } ->
      if Array.length layers = 0 then fail "dnn has no layers"
      else begin
        let problem = ref None in
        Array.iteri
          (fun i l ->
            if !problem = None then begin
              if l.n_in <= 0 || l.n_out <= 0 then
                problem := Some (Printf.sprintf "layer %d has empty shape" i);
              if Array.length l.weights <> l.n_out then
                problem := Some (Printf.sprintf "layer %d weight rows" i);
              Array.iter
                (fun row ->
                  if Array.length row <> l.n_in then
                    problem := Some (Printf.sprintf "layer %d ragged weights" i))
                l.weights;
              if Array.length l.biases <> l.n_out then
                problem := Some (Printf.sprintf "layer %d bias length" i);
              if i > 0 && layers.(i - 1).n_out <> l.n_in then
                problem :=
                  Some (Printf.sprintf "layer %d input mismatches layer %d" i (i - 1))
            end)
          layers;
        match !problem with None -> Ok () | Some p -> Error p
      end
  | Kmeans { centroids; _ } ->
      if Array.length centroids = 0 then fail "kmeans has no centroids"
      else
        let d = Array.length centroids.(0) in
        if d = 0 then fail "kmeans centroids are empty"
        else if Array.exists (fun c -> Array.length c <> d) centroids then
          fail "kmeans ragged centroids"
        else Ok ()
  | Svm { class_weights; biases; _ } ->
      if Array.length class_weights = 0 then fail "svm has no classes"
      else
        let d = Array.length class_weights.(0) in
        if d = 0 then fail "svm weight vectors are empty"
        else if Array.exists (fun w -> Array.length w <> d) class_weights then
          fail "svm ragged weights"
        else if Array.length biases <> Array.length class_weights then
          fail "svm bias count mismatches class count"
        else Ok ()
  | Tree { n_features; n_classes; _ } ->
      if n_features <= 0 then fail "tree has no features"
      else if n_classes <= 0 then fail "tree has no classes"
      else Ok ()
