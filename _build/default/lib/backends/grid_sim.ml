type stage = { label : string; latency_cycles : int; ii_cycles : int }

let stages_of_model grid model =
  let mapping = Taurus.map_model grid model in
  List.map
    (fun (label, cycles) ->
      { label; latency_cycles = cycles; ii_cycles = mapping.Taurus.ii })
    (Taurus.stage_timings grid model)

type trace = {
  stages : stage array;
  enter : int array array;  (** [packet][stage] *)
  leave : int array array;
}

let run stages ~n_packets =
  if stages = [] then invalid_arg "Grid_sim.run: no stages";
  if n_packets <= 0 then invalid_arg "Grid_sim.run: n_packets <= 0";
  List.iter
    (fun s ->
      if s.latency_cycles <= 0 || s.ii_cycles <= 0 then
        invalid_arg "Grid_sim.run: non-positive stage parameters")
    stages;
  let stages = Array.of_list stages in
  let n_stages = Array.length stages in
  let enter = Array.make_matrix n_packets n_stages 0 in
  let leave = Array.make_matrix n_packets n_stages 0 in
  for p = 0 to n_packets - 1 do
    for s = 0 to n_stages - 1 do
      (* Double buffering: a stage admits packet p once (a) the packet has
         left the previous stage and (b) one II has elapsed since it
         admitted packet p-1. *)
      let ready_input = if s = 0 then p (* offered once per cycle *) else leave.(p).(s - 1) in
      let stage_free =
        if p = 0 then 0 else enter.(p - 1).(s) + stages.(s).ii_cycles
      in
      enter.(p).(s) <- Stdlib.max ready_input stage_free;
      leave.(p).(s) <- enter.(p).(s) + stages.(s).latency_cycles
    done
  done;
  { stages; enter; leave }

let n_packets t = Array.length t.enter
let n_stages t = Array.length t.stages

let total_cycles t = t.leave.(n_packets t - 1).(n_stages t - 1)

let packet_latency t i =
  if i < 0 || i >= n_packets t then invalid_arg "Grid_sim.packet_latency: out of range";
  t.leave.(i).(n_stages t - 1) - t.enter.(i).(0)

let steady_state_interval t =
  let n = n_packets t in
  if n < 2 then float_of_int (total_cycles t)
  else begin
    (* Average departure gap over the second half of the run. *)
    let last = n_stages t - 1 in
    let from = n / 2 in
    let span = t.leave.(n - 1).(last) - t.leave.(from).(last) in
    float_of_int span /. float_of_int (n - 1 - from)
  end

let stage_occupancy t =
  let total = Stdlib.max 1 (total_cycles t) in
  Array.to_list
    (Array.mapi
       (fun s stage ->
         let busy = ref 0 in
         for p = 0 to n_packets t - 1 do
           busy := !busy + (t.leave.(p).(s) - t.enter.(p).(s))
         done;
         (* A pipelined stage overlaps packets; occupancy is capped at 1. *)
         (stage.label, Stdlib.min 1. (float_of_int !busy /. float_of_int total)))
       t.stages)

let agrees_with_analytical grid model =
  let mapping = Taurus.map_model grid model in
  let stages = stages_of_model grid model in
  let trace = run stages ~n_packets:64 in
  let first_latency = packet_latency trace 0 in
  let interval = steady_state_interval trace in
  first_latency = mapping.Taurus.pipeline_cycles
  && Float.abs (interval -. float_of_int mapping.Taurus.ii) < 0.01
