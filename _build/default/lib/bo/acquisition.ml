module Mathx = Homunculus_util.Mathx

let expected_improvement ~mean ~std ~best =
  if best = neg_infinity then infinity
  else if std <= 0. then Stdlib.max 0. (mean -. best)
  else
    let z = (mean -. best) /. std in
    ((mean -. best) *. Mathx.normal_cdf z) +. (std *. Mathx.normal_pdf z)

let upper_confidence_bound ~mean ~std ~kappa = mean +. (kappa *. std)
