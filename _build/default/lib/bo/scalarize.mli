(** Random-scalarization support for multi-objective optimization
    (Paria et al. 2019, cited by the paper for multi-objective BO).

    Each scalarization draws a weight vector from the simplex and reduces an
    objective vector to a single value; running several scalarized
    optimizations approximates the Pareto front. *)

type t

val draw : Homunculus_util.Rng.t -> n_objectives:int -> t
(** Uniform Dirichlet(1,...,1) weights. *)

val of_weights : float array -> t
(** @raise Invalid_argument on negative or all-zero weights (they are
    normalized to sum to 1). *)

val weights : t -> float array

val apply : t -> float array -> float
(** Weighted Chebyshev-free linear scalarization: [sum_i w_i * y_i]. *)

val apply_chebyshev : t -> reference:float array -> float array -> float
(** Augmented Chebyshev scalarization against a reference (ideal) point; more
    robust for non-convex fronts: [- max_i w_i (ref_i - y_i)]. *)

val pareto_front : float array array -> int array
(** Indices of non-dominated points (maximization in every coordinate). *)
