(** Acquisition functions ranking candidate configurations. The paper uses
    Expected Improvement (Mockus et al. 1978) over the RF surrogate. *)

val expected_improvement : mean:float -> std:float -> best:float -> float
(** EI for maximization: [E max(0, f(x) - best)] under a Gaussian posterior.
    With [std = 0.] degrades to [max 0 (mean - best)]. When no feasible
    incumbent exists yet, pass [best = neg_infinity]; the result is then
    [infinity] (any point improves). *)

val upper_confidence_bound : mean:float -> std:float -> kappa:float -> float
(** Alternative exploratory criterion, used by the ablation bench. *)
