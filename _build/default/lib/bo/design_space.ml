module Rng = Homunculus_util.Rng

type t = { params : Param.t list }

let create params =
  if params = [] then invalid_arg "Design_space.create: no parameters";
  let names = List.map (fun p -> p.Param.name) params in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Design_space.create: duplicate parameter names";
  { params }

let params t = t.params
let dim t = List.length t.params

let find_param t name =
  List.find_opt (fun p -> String.equal p.Param.name name) t.params

let sample rng t =
  Config.make
    (List.map (fun p -> (p.Param.name, Param.sample rng p)) t.params)

let neighbor rng t config =
  let n = dim t in
  (* Perturb each coordinate with probability 1/n, at least one overall. *)
  let any = ref false in
  let perturbed =
    List.map
      (fun p ->
        let v = Config.find config p.Param.name in
        if Rng.bernoulli rng (1. /. float_of_int n) then begin
          any := true;
          (p.Param.name, Param.neighbor rng p v)
        end
        else (p.Param.name, v))
      t.params
  in
  if !any then Config.make perturbed
  else
    let idx = Rng.int rng n in
    Config.make
      (List.mapi
         (fun i (name, v) ->
           if i = idx then
             let p = List.nth t.params i in
             (name, Param.neighbor rng p v)
           else (name, v))
         perturbed)

let encode t config =
  Array.of_list
    (List.map (fun p -> Param.encode p (Config.find config p.Param.name)) t.params)

let validate t config =
  List.length (Config.bindings config) = dim t
  && List.for_all
       (fun p ->
         match Config.find_opt config p.Param.name with
         | Some v -> Param.validate p v
         | None -> false)
       t.params

let log_cardinality t =
  List.fold_left
    (fun acc p ->
      acc
      +. log
           (float_of_int
              (match Param.cardinality p with Some n -> n | None -> 1000)))
    0. t.params
