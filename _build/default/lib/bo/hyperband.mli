(** Successive-halving / Hyperband-style search, the strategy mainstream
    AutoML frameworks (AutoKeras, Auto-sklearn — paper §2) use instead of
    Bayesian optimization.

    Candidates are sampled uniformly, evaluated at a small fidelity (e.g. few
    training epochs), and the best fraction survives to the next rung at
    higher fidelity. Provided as an ablation counterpart to
    {!Optimizer.maximize}: it needs a fidelity knob and spends budget on
    throwaway low-fidelity runs, but parallelizes trivially. *)

type settings = {
  initial_candidates : int;  (** rung-0 population *)
  eta : int;  (** keep top 1/eta per rung (classic Hyperband uses 3) *)
  min_fidelity : float;  (** in (0, 1]; rung-0 evaluation fidelity *)
}

val default_settings : settings
(** 27 candidates, eta 3, fidelity 1/9 — three rungs. *)

type evaluation = { objective : float; feasible : bool }

val n_rungs : settings -> int
(** Number of halving rounds until one candidate remains. *)

val total_evaluations : settings -> int
(** Black-box calls across all rungs (each survivor re-evaluates). *)

val search :
  Homunculus_util.Rng.t ->
  ?settings:settings ->
  Design_space.t ->
  f:(Config.t -> fidelity:float -> evaluation) ->
  History.t
(** Run successive halving; [f] receives the rung's fidelity in (0, 1]
    (implementations typically scale epochs by it). The history records
    every evaluation with its rung fidelity in the metadata key
    ["fidelity"]; the final-rung winner is [History.best] among entries at
    fidelity 1 (infeasible candidates are dropped at every rung). *)
