module Rng = Homunculus_util.Rng

type t = { weights : float array }

let of_weights raw =
  if Array.length raw = 0 then invalid_arg "Scalarize.of_weights: empty";
  if Array.exists (fun w -> w < 0.) raw then
    invalid_arg "Scalarize.of_weights: negative weight";
  let total = Array.fold_left ( +. ) 0. raw in
  if total <= 0. then invalid_arg "Scalarize.of_weights: weights sum to zero";
  { weights = Array.map (fun w -> w /. total) raw }

let draw rng ~n_objectives =
  if n_objectives <= 0 then invalid_arg "Scalarize.draw: n_objectives <= 0";
  (* Dirichlet(1,..,1) via normalized exponentials. *)
  of_weights (Array.init n_objectives (fun _ -> Rng.exponential rng 1.))

let weights t = Array.copy t.weights

let check_dim t ys =
  if Array.length ys <> Array.length t.weights then
    invalid_arg "Scalarize.apply: objective dimension mismatch"

let apply t ys =
  check_dim t ys;
  let acc = ref 0. in
  Array.iteri (fun i y -> acc := !acc +. (t.weights.(i) *. y)) ys;
  !acc

let apply_chebyshev t ~reference ys =
  check_dim t ys;
  if Array.length reference <> Array.length ys then
    invalid_arg "Scalarize.apply_chebyshev: reference dimension mismatch";
  let worst = ref neg_infinity in
  Array.iteri
    (fun i y ->
      let v = t.weights.(i) *. (reference.(i) -. y) in
      if v > !worst then worst := v)
    ys;
  let rho = 0.05 in
  -.(!worst +. (rho *. apply t (Array.mapi (fun i y -> reference.(i) -. y) ys)))

let dominates a b =
  let ge = ref true and gt = ref false in
  Array.iteri
    (fun i ai ->
      if ai < b.(i) then ge := false;
      if ai > b.(i) then gt := true)
    a;
  !ge && !gt

let pareto_front points =
  let n = Array.length points in
  let keep = ref [] in
  for i = n - 1 downto 0 do
    let dominated = ref false in
    for j = 0 to n - 1 do
      if j <> i && dominates points.(j) points.(i) then dominated := true
    done;
    if not !dominated then keep := i :: !keep
  done;
  Array.of_list !keep
