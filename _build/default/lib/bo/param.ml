module Rng = Homunculus_util.Rng
module Mathx = Homunculus_util.Mathx

type kind =
  | Real of { lo : float; hi : float; log_scale : bool }
  | Int of { lo : int; hi : int }
  | Ordinal of float array
  | Categorical of string array

type t = { name : string; kind : kind }

type value = Real_value of float | Int_value of int | Index_value of int

let real ?(log_scale = false) name ~lo ~hi =
  if not (lo < hi) then invalid_arg "Param.real: lo >= hi";
  if log_scale && lo <= 0. then invalid_arg "Param.real: log scale needs lo > 0";
  { name; kind = Real { lo; hi; log_scale } }

let int name ~lo ~hi =
  if lo > hi then invalid_arg "Param.int: lo > hi";
  { name; kind = Int { lo; hi } }

let ordinal name values =
  if Array.length values = 0 then invalid_arg "Param.ordinal: empty domain";
  let sorted = Array.copy values in
  Array.sort compare sorted;
  if sorted <> values then invalid_arg "Param.ordinal: values must be increasing";
  { name; kind = Ordinal values }

let categorical name values =
  if Array.length values = 0 then invalid_arg "Param.categorical: empty domain";
  { name; kind = Categorical values }

let validate t value =
  match (t.kind, value) with
  | Real { lo; hi; _ }, Real_value v -> v >= lo && v <= hi
  | Int { lo; hi }, Int_value v -> v >= lo && v <= hi
  | Ordinal vs, Index_value i -> i >= 0 && i < Array.length vs
  | Categorical vs, Index_value i -> i >= 0 && i < Array.length vs
  | (Real _ | Int _ | Ordinal _ | Categorical _), _ -> false

let sample rng t =
  match t.kind with
  | Real { lo; hi; log_scale } ->
      if log_scale then
        (* Clamp after exp: the exp/log roundtrip can overshoot by an ulp. *)
        Real_value
          (Mathx.clamp ~lo ~hi (exp (Rng.uniform rng (log lo) (log hi))))
      else Real_value (Rng.uniform rng lo hi)
  | Int { lo; hi } -> Int_value (lo + Rng.int rng (hi - lo + 1))
  | Ordinal vs -> Index_value (Rng.int rng (Array.length vs))
  | Categorical vs -> Index_value (Rng.int rng (Array.length vs))

let neighbor rng t value =
  if not (validate t value) then invalid_arg "Param.neighbor: invalid value";
  match (t.kind, value) with
  | Real { lo; hi; log_scale }, Real_value v ->
      if log_scale then
        let lv = log v +. Rng.gaussian rng ~sigma:(0.1 *. (log hi -. log lo)) () in
        Real_value
          (Mathx.clamp ~lo ~hi (exp (Mathx.clamp ~lo:(log lo) ~hi:(log hi) lv)))
      else
        let v' = v +. Rng.gaussian rng ~sigma:(0.1 *. (hi -. lo)) () in
        Real_value (Mathx.clamp ~lo ~hi v')
  | Int { lo; hi }, Int_value v ->
      let delta = if Rng.bool rng then 1 else -1 in
      Int_value (Mathx.clamp_int ~lo ~hi (v + delta))
  | Ordinal vs, Index_value i ->
      let delta = if Rng.bool rng then 1 else -1 in
      Index_value (Mathx.clamp_int ~lo:0 ~hi:(Array.length vs - 1) (i + delta))
  | Categorical vs, Index_value _ -> Index_value (Rng.int rng (Array.length vs))
  | (Real _ | Int _ | Ordinal _ | Categorical _), _ ->
      assert false (* excluded by validate *)

let encode t value =
  match (t.kind, value) with
  | Real { lo; hi; log_scale }, Real_value v ->
      if log_scale then (log v -. log lo) /. (log hi -. log lo)
      else (v -. lo) /. (hi -. lo)
  | Int { lo; hi }, Int_value v ->
      if lo = hi then 0. else float_of_int (v - lo) /. float_of_int (hi - lo)
  | Ordinal vs, Index_value i ->
      if Array.length vs = 1 then 0.
      else float_of_int i /. float_of_int (Array.length vs - 1)
  | Categorical _, Index_value i -> float_of_int i
  | (Real _ | Int _ | Ordinal _ | Categorical _), _ ->
      invalid_arg "Param.encode: value shape mismatch"

let cardinality t =
  match t.kind with
  | Real _ -> None
  | Int { lo; hi } -> Some (hi - lo + 1)
  | Ordinal vs -> Some (Array.length vs)
  | Categorical vs -> Some (Array.length vs)

let value_to_string t value =
  match (t.kind, value) with
  | Real _, Real_value v -> Printf.sprintf "%g" v
  | Int _, Int_value v -> string_of_int v
  | Ordinal vs, Index_value i -> Printf.sprintf "%g" vs.(i)
  | Categorical vs, Index_value i -> vs.(i)
  | (Real _ | Int _ | Ordinal _ | Categorical _), _ -> "<invalid>"
