(** A point in a design space: one value per parameter, addressed by name. *)

type t

val make : (string * Param.value) list -> t
(** @raise Invalid_argument on duplicate names. *)

val bindings : t -> (string * Param.value) list
(** In insertion order. *)

val find : t -> string -> Param.value
(** @raise Not_found. *)

val find_opt : t -> string -> Param.value option

val get_int : t -> string -> int
(** @raise Invalid_argument if present with a different shape,
    @raise Not_found if absent. *)

val get_float : t -> string -> float
val get_index : t -> string -> int

val equal : t -> t -> bool
(** Structural equality up to binding order. *)

val hash : t -> int
(** Order-insensitive structural hash, stable across runs. Evaluators use it
    to derive a per-configuration seed so the black box is deterministic —
    re-proposing a configuration yields the same measurement. *)

val to_string : t -> string
(** Compact [name=value] rendering for logs (raw values, without parameter
    domain information). *)
