module Rng = Homunculus_util.Rng

type settings = {
  n_init : int;
  n_iter : int;
  pool_size : int;
  local_search_frac : float;
  surrogate_trees : int;
}

let default_settings =
  {
    n_init = 10;
    n_iter = 40;
    pool_size = 200;
    local_search_frac = 0.5;
    surrogate_trees = 30;
  }

type evaluation = {
  objective : float;
  feasible : bool;
  metadata : (string * float) list;
}

let evaluate_and_record history f config ~on_iteration =
  let { objective; feasible; metadata } = f config in
  History.add history ~config ~objective ~feasible ~metadata ();
  match (on_iteration, History.last history) with
  | Some callback, Some latest -> callback (History.length history) latest
  | (None, _ | _, None) -> ()

let random_search rng ~n space ~f =
  let history = History.create () in
  for _ = 1 to n do
    evaluate_and_record history f (Design_space.sample rng space)
      ~on_iteration:None
  done;
  history

let fresh_candidate rng space history =
  (* Avoid re-evaluating an exact duplicate; give up after a few tries for
     small discrete spaces. *)
  let rec go attempts =
    let c = Design_space.sample rng space in
    if attempts <= 0 || not (History.mem_config history c) then c
    else go (attempts - 1)
  in
  go 8

let maximize rng ?(settings = default_settings) ?on_iteration space ~f =
  if settings.n_init <= 0 then invalid_arg "Bo.Optimizer.maximize: n_init <= 0";
  let history = History.create () in
  (* Phase 1: uniform random initialization. *)
  for _ = 1 to settings.n_init do
    evaluate_and_record history f (fresh_candidate rng space history)
      ~on_iteration
  done;
  (* Phase 2: surrogate-guided iterations. *)
  for _ = 1 to settings.n_iter do
    let entries = History.entries history in
    let encoded =
      Array.of_list
        (List.map (fun e -> Design_space.encode space e.History.config) entries)
    in
    let objectives =
      Array.of_list (List.map (fun e -> e.History.objective) entries)
    in
    let feasible_flags =
      Array.of_list (List.map (fun e -> e.History.feasible) entries)
    in
    let surrogate =
      Surrogate.fit rng ~n_trees:settings.surrogate_trees ~x:encoded
        ~y:objectives ()
    in
    let feas_model =
      Feasibility.fit rng ~n_trees:settings.surrogate_trees ~x:encoded
        ~feasible:feasible_flags ()
    in
    let incumbent = History.best history in
    let best_value =
      match incumbent with
      | Some e -> e.History.objective
      | None -> neg_infinity
    in
    (* Candidate pool: uniform samples plus neighbors of the incumbent. *)
    let n_local =
      match incumbent with
      | None -> 0
      | Some _ ->
          int_of_float
            (settings.local_search_frac *. float_of_int settings.pool_size)
    in
    let make_candidate i =
      match incumbent with
      | Some e when i < n_local ->
          Design_space.neighbor rng space e.History.config
      | Some _ | None -> Design_space.sample rng space
    in
    let best_candidate = ref None in
    for i = 0 to settings.pool_size - 1 do
      let candidate = make_candidate i in
      if not (History.mem_config history candidate) then begin
        let point = Design_space.encode space candidate in
        let mean, std = Surrogate.predict surrogate point in
        let ei = Acquisition.expected_improvement ~mean ~std ~best:best_value in
        let p_feas = Feasibility.prob_feasible feas_model point in
        let score =
          if ei = infinity then p_feas (* no incumbent: chase feasibility *)
          else ei *. p_feas
        in
        match !best_candidate with
        | Some (_, s) when s >= score -> ()
        | Some _ | None -> best_candidate := Some (candidate, score)
      end
    done;
    let chosen =
      match !best_candidate with
      | Some (c, _) -> c
      | None -> fresh_candidate rng space history
    in
    evaluate_and_record history f chosen ~on_iteration
  done;
  history
