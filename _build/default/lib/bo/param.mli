(** Search-space parameters.

    HyperMapper's design spaces mix real, integer, ordinal, and categorical
    variables (paper §3.2.3); all four are supported. Each parameter also
    defines its numeric encoding for the surrogate model and a local
    neighborhood for candidate generation. *)

type kind =
  | Real of { lo : float; hi : float; log_scale : bool }
  | Int of { lo : int; hi : int }
  | Ordinal of float array  (** increasing admissible values *)
  | Categorical of string array

type t = { name : string; kind : kind }

type value =
  | Real_value of float
  | Int_value of int
  | Index_value of int  (** index into an ordinal/categorical domain *)

val real : ?log_scale:bool -> string -> lo:float -> hi:float -> t
val int : string -> lo:int -> hi:int -> t
val ordinal : string -> float array -> t
val categorical : string -> string array -> t
(** Constructors validate their bounds and raise [Invalid_argument]. *)

val validate : t -> value -> bool
(** Value is of the right shape and inside the domain. *)

val sample : Homunculus_util.Rng.t -> t -> value
(** Uniform over the domain (log-uniform for log-scaled reals). *)

val neighbor : Homunculus_util.Rng.t -> t -> value -> value
(** Local perturbation used to refine promising configurations: reals move by
    ~10% of the range, integers/ordinals by +-1 step, categoricals resample.
    @raise Invalid_argument if the value does not validate. *)

val encode : t -> value -> float
(** Numeric feature for the surrogate, scaled into [0, 1] for reals/ints and
    index-based for ordinals/categoricals. *)

val cardinality : t -> int option
(** Number of distinct values for discrete parameters, [None] for reals. *)

val value_to_string : t -> value -> string
