let dominates a b =
  let ge = ref true and gt = ref false in
  Array.iteri
    (fun i ai ->
      if ai < b.(i) then ge := false;
      if ai > b.(i) then gt := true)
    a;
  !ge && !gt

type 'a t = {
  n_objectives : int;
  mutable front : (float array * 'a) list;
}

let create ~n_objectives =
  if n_objectives < 1 then invalid_arg "Pareto.create: n_objectives < 1";
  { n_objectives; front = [] }

let add t ~objectives payload =
  if Array.length objectives <> t.n_objectives then
    invalid_arg "Pareto.add: dimension mismatch";
  let dominated_or_equal =
    List.exists
      (fun (existing, _) -> existing = objectives || dominates existing objectives)
      t.front
  in
  if dominated_or_equal then false
  else begin
    t.front <-
      (objectives, payload)
      :: List.filter (fun (existing, _) -> not (dominates objectives existing)) t.front;
    true
  end

let points t =
  List.sort (fun (a, _) (b, _) -> compare b.(0) a.(0)) t.front

let size t = List.length t.front

let hypervolume2 ~reference front =
  if Array.length reference <> 2 then
    invalid_arg "Pareto.hypervolume2: 2 objectives required";
  List.iter
    (fun (p, _) ->
      if Array.length p <> 2 then
        invalid_arg "Pareto.hypervolume2: 2 objectives required";
      if p.(0) < reference.(0) || p.(1) < reference.(1) then
        invalid_arg "Pareto.hypervolume2: point below the reference")
    front;
  (* Sweep points by descending first objective; each contributes a slab of
     width (x - ref_x) over the gain in y beyond the best y seen so far. *)
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare b.(0) a.(0)) front
  in
  let area = ref 0. in
  let best_y = ref reference.(1) in
  List.iter
    (fun (p, _) ->
      if p.(1) > !best_y then begin
        area := !area +. ((p.(0) -. reference.(0)) *. (p.(1) -. !best_y));
        best_y := p.(1)
      end)
    sorted;
  !area

let hypervolume t ~reference = hypervolume2 ~reference t.front
