lib/bo/surrogate.ml: Homunculus_ml
