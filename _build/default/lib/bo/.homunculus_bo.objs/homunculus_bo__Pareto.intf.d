lib/bo/pareto.mli:
