lib/bo/design_space.ml: Array Config Homunculus_util List Param String
