lib/bo/scalarize.ml: Array Homunculus_util
