lib/bo/acquisition.ml: Homunculus_util Stdlib
