lib/bo/param.ml: Array Homunculus_util Printf
