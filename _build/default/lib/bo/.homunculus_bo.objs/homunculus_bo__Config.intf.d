lib/bo/config.mli: Param
