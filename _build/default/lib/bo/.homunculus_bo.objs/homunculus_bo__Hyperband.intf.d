lib/bo/hyperband.mli: Config Design_space History Homunculus_util
