lib/bo/optimizer.ml: Acquisition Array Design_space Feasibility History Homunculus_util List Surrogate
