lib/bo/pareto.ml: Array List
