lib/bo/config.ml: Char List Param Printf String
