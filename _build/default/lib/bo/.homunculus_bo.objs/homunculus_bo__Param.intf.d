lib/bo/param.mli: Homunculus_util
