lib/bo/history.mli: Config
