lib/bo/scalarize.mli: Homunculus_util
