lib/bo/design_space.mli: Config Homunculus_util Param
