lib/bo/serialize.mli: Config Design_space History Homunculus_util
