lib/bo/surrogate.mli: Homunculus_util
