lib/bo/serialize.ml: Array Config Design_space History Homunculus_util List Param Printf String
