lib/bo/feasibility.mli: Homunculus_util
