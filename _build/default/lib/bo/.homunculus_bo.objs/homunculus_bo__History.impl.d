lib/bo/history.ml: Array Config List
