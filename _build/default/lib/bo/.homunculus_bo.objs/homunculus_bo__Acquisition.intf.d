lib/bo/acquisition.mli:
