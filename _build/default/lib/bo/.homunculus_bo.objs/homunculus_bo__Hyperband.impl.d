lib/bo/hyperband.ml: Design_space History Homunculus_util List Stdlib
