lib/bo/feasibility.ml: Array Homunculus_ml
