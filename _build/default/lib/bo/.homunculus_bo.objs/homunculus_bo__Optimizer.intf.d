lib/bo/optimizer.mli: Config Design_space History Homunculus_util
