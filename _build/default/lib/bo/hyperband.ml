module Rng = Homunculus_util.Rng

type settings = { initial_candidates : int; eta : int; min_fidelity : float }

let default_settings = { initial_candidates = 27; eta = 3; min_fidelity = 1. /. 9. }

type evaluation = { objective : float; feasible : bool }

let validate settings =
  if settings.initial_candidates <= 0 then
    invalid_arg "Hyperband: initial_candidates <= 0";
  if settings.eta < 2 then invalid_arg "Hyperband: eta < 2";
  if settings.min_fidelity <= 0. || settings.min_fidelity > 1. then
    invalid_arg "Hyperband: min_fidelity outside (0, 1]"

let n_rungs settings =
  validate settings;
  let rec go rung population =
    if population <= 1 then rung + 1
    else go (rung + 1) (population / settings.eta)
  in
  go 0 settings.initial_candidates

let total_evaluations settings =
  validate settings;
  let rec go acc population =
    if population <= 1 then acc + population
    else go (acc + population) (population / settings.eta)
  in
  go 0 settings.initial_candidates

let search rng ?(settings = default_settings) space ~f =
  validate settings;
  let history = History.create () in
  let rungs = n_rungs settings in
  (* Fidelity grows geometrically from min_fidelity to 1 across rungs. *)
  let fidelity_at rung =
    if rungs = 1 then 1.
    else
      let ratio = float_of_int rung /. float_of_int (rungs - 1) in
      Homunculus_util.Mathx.clamp ~lo:0. ~hi:1.
        (settings.min_fidelity ** (1. -. ratio))
  in
  let evaluate rung config =
    let fidelity = fidelity_at rung in
    let { objective; feasible } = f config ~fidelity in
    History.add history ~config ~objective ~feasible
      ~metadata:[ ("fidelity", fidelity); ("rung", float_of_int rung) ]
      ();
    (config, objective, feasible)
  in
  let rec run rung population =
    let scored = List.map (evaluate rung) population in
    let survivors =
      scored
      |> List.filter (fun (_, _, feasible) -> feasible)
      |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
    in
    let next_count = List.length population / settings.eta in
    if next_count >= 1 && rung + 1 < rungs then
      let kept =
        List.filteri (fun i _ -> i < Stdlib.max 1 next_count) survivors
        |> List.map (fun (c, _, _) -> c)
      in
      if kept = [] then () (* everything infeasible: stop early *)
      else run (rung + 1) kept
    else ()
  in
  let initial =
    List.init settings.initial_candidates (fun _ -> Design_space.sample rng space)
  in
  run 0 initial;
  history
