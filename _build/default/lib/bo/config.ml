type t = (string * Param.value) list

let make bindings =
  let names = List.map fst bindings in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Config.make: duplicate parameter names";
  bindings

let bindings t = t

let find t name = List.assoc name t
let find_opt t name = List.assoc_opt name t

let get_int t name =
  match find t name with
  | Param.Int_value v -> v
  | Param.Real_value _ | Param.Index_value _ ->
      invalid_arg (Printf.sprintf "Config.get_int: %s is not an int" name)

let get_float t name =
  match find t name with
  | Param.Real_value v -> v
  | Param.Int_value _ | Param.Index_value _ ->
      invalid_arg (Printf.sprintf "Config.get_float: %s is not a real" name)

let get_index t name =
  match find t name with
  | Param.Index_value v -> v
  | Param.Real_value _ | Param.Int_value _ ->
      invalid_arg (Printf.sprintf "Config.get_index: %s is not an index" name)

let equal a b =
  let norm t = List.sort (fun (x, _) (y, _) -> String.compare x y) t in
  norm a = norm b

let hash t =
  let canonical = List.sort (fun (a, _) (b, _) -> String.compare a b) t in
  (* FNV-1a over a canonical rendering: stable across runs and processes
     (unlike Hashtbl.hash on floats boxed differently). *)
  let render (name, v) =
    name ^ "="
    ^ (match v with
      | Param.Real_value x -> Printf.sprintf "r%h" x
      | Param.Int_value x -> Printf.sprintf "i%d" x
      | Param.Index_value x -> Printf.sprintf "x%d" x)
  in
  let text = String.concat ";" (List.map render canonical) in
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    text;
  !h land max_int

let value_to_raw_string = function
  | Param.Real_value v -> Printf.sprintf "%g" v
  | Param.Int_value v -> string_of_int v
  | Param.Index_value v -> Printf.sprintf "#%d" v

let to_string t =
  String.concat ", "
    (List.map (fun (name, v) -> name ^ "=" ^ value_to_raw_string v) t)
