(** Ordered collection of parameters defining a finite-bound search space
    (paper §3.2.2: hyperparameters + resource and network constraint
    variables, each with explicit lower/upper bounds). *)

type t

val create : Param.t list -> t
(** @raise Invalid_argument on duplicate parameter names or empty lists. *)

val params : t -> Param.t list
val dim : t -> int
val find_param : t -> string -> Param.t option

val sample : Homunculus_util.Rng.t -> t -> Config.t
(** One independent uniform draw per parameter. *)

val neighbor : Homunculus_util.Rng.t -> t -> Config.t -> Config.t
(** Perturb a random non-empty subset of the parameters of [config]. *)

val encode : t -> Config.t -> float array
(** Feature vector for the surrogate model, one entry per parameter in
    declaration order. @raise Not_found if the config misses a parameter. *)

val validate : t -> Config.t -> bool
(** The config has exactly the space's parameters, all in-domain. *)

val log_cardinality : t -> float
(** Natural log of the number of discrete configurations; counts reals as one
    dimension of size 1000 (for reporting only). *)
