(** The constrained Bayesian-optimization loop (HyperMapper's core algorithm
    as configured by the paper: uniform random warm-up, random-forest
    surrogate, Expected Improvement weighted by probability of feasibility). *)

type settings = {
  n_init : int;  (** uniform random warm-up evaluations *)
  n_iter : int;  (** model-guided evaluations after warm-up *)
  pool_size : int;  (** candidates scored per BO iteration *)
  local_search_frac : float;
      (** fraction of the pool drawn as neighbors of the incumbent rather
          than uniformly (exploitation vs exploration) *)
  surrogate_trees : int;
}

val default_settings : settings
(** 10 warm-up, 40 guided, pool 200, 0.5 local, 30 trees. *)

type evaluation = {
  objective : float;  (** value to maximize, e.g. F1 *)
  feasible : bool;
  metadata : (string * float) list;
}

val maximize :
  Homunculus_util.Rng.t ->
  ?settings:settings ->
  ?on_iteration:(int -> History.entry -> unit) ->
  Design_space.t ->
  f:(Config.t -> evaluation) ->
  History.t
(** Run the full loop and return the evaluation history. The black box [f] is
    called exactly [n_init + n_iter] times (duplicate candidates are replaced
    by fresh uniform samples before evaluation when possible). *)

val random_search :
  Homunculus_util.Rng.t ->
  n:int ->
  Design_space.t ->
  f:(Config.t -> evaluation) ->
  History.t
(** Pure random search baseline for the DSE ablation bench. *)
