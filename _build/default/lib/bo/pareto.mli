(** Pareto archives and quality indicators for multi-objective optimization
    (all objectives maximized).

    {!Scalarize} turns objective vectors into scalars for individual runs;
    this module maintains the cross-run archive of non-dominated points and
    scores it with the standard 2-D hypervolume indicator, so ablations can
    compare multi-objective strategies quantitatively. *)

type 'a t
(** An archive of non-dominated [(objectives, payload)] pairs. *)

val create : n_objectives:int -> 'a t
(** @raise Invalid_argument unless [n_objectives >= 1]. *)

val add : 'a t -> objectives:float array -> 'a -> bool
(** Insert a point; dominated incumbents are evicted. Returns [false] (and
    leaves the archive unchanged) when the point is dominated by or equal to
    an existing one. @raise Invalid_argument on dimension mismatch. *)

val points : 'a t -> (float array * 'a) list
(** Current front, sorted by descending first objective. *)

val size : 'a t -> int

val dominates : float array -> float array -> bool
(** [a] weakly better everywhere and strictly better somewhere. *)

val hypervolume2 : reference:float array -> (float array * 'a) list -> float
(** Area dominated by a 2-objective front relative to a reference point that
    every front point must dominate. @raise Invalid_argument on non-2D
    input or when a point does not dominate the reference. *)

val hypervolume : 'a t -> reference:float array -> float
(** {!hypervolume2} over the archive (2-objective archives only). *)
