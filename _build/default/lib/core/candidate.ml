open Homunculus_alchemy
open Homunculus_backends
module Dataset = Homunculus_ml.Dataset

let metric_compatible metric algo =
  match (metric, algo) with
  | Model_spec.V_measure, Model_spec.Kmeans -> true
  | Model_spec.V_measure, (Model_spec.Dnn | Svm | Tree) -> false
  | (Model_spec.F1 | Accuracy), Model_spec.Kmeans -> false
  | (Model_spec.F1 | Accuracy), (Model_spec.Dnn | Svm | Tree) -> true

(* The smallest model of each family anyone would deploy; if this does not
   fit, no member of the family will. *)
let minimal_model algo ~input_dim ~n_classes =
  let zeros_matrix rows cols = Array.make_matrix rows cols 0. in
  match algo with
  | Model_spec.Dnn ->
      Model_ir.Dnn
        {
          name = "probe";
          layers =
            [|
              {
                Model_ir.n_in = input_dim;
                n_out = 2;
                activation = "relu";
                weights = zeros_matrix 2 input_dim;
                biases = Array.make 2 0.;
              };
              {
                Model_ir.n_in = 2;
                n_out = n_classes;
                activation = "linear";
                weights = zeros_matrix n_classes 2;
                biases = Array.make n_classes 0.;
              };
            |];
        }
  | Model_spec.Kmeans ->
      Model_ir.Kmeans { name = "probe"; centroids = zeros_matrix 1 input_dim }
  | Model_spec.Svm ->
      Model_ir.Svm
        {
          name = "probe";
          class_weights = zeros_matrix n_classes input_dim;
          biases = Array.make n_classes 0.;
        }
  | Model_spec.Tree ->
      Model_ir.Tree
        {
          name = "probe";
          root =
            Homunculus_ml.Decision_tree.Split
              {
                feature = 0;
                threshold = 0.;
                left = Leaf { distribution = Array.make n_classes 0. };
                right = Leaf { distribution = Array.make n_classes 0. };
              };
          n_features = input_dim;
          n_classes;
        }

let platform_compatible_dims platform algo ~input_dim ~n_classes =
  Platform.supports platform algo
  &&
  let probe = minimal_model algo ~input_dim ~n_classes in
  (Platform.estimate platform probe).Resource.feasible

let platform_compatible platform algo =
  (* Without data in hand, probe with a generic small shape. *)
  platform_compatible_dims platform algo ~input_dim:4 ~n_classes:2

let filter platform spec =
  let data = Model_spec.load spec in
  let input_dim = Dataset.n_features data.Model_spec.train in
  let n_classes = data.Model_spec.train.Dataset.n_classes in
  List.filter
    (fun algo ->
      metric_compatible (Model_spec.metric spec) algo
      && platform_compatible_dims platform algo ~input_dim ~n_classes)
    (Model_spec.algorithms spec)
