(** Candidate algorithm selection (paper §3.2.1): before any training, rule
    out algorithms that cannot possibly satisfy the platform and metric. *)

open Homunculus_alchemy

val metric_compatible : Model_spec.metric -> Model_spec.algorithm -> bool
(** V-measure is a clustering metric (KMeans only); F1/accuracy need
    supervised algorithms (DNN/SVM/Tree). *)

val platform_compatible : Platform.t -> Model_spec.algorithm -> bool
(** Structural support ({!Platform.supports}) plus a cheap minimal-footprint
    probe: if even the smallest sensible model of this algorithm is
    infeasible on the target, drop the whole algorithm — "the core tries to
    rule out as many algorithms as possible based on the data-plane platform
    and network constraints". *)

val filter : Platform.t -> Model_spec.t -> Model_spec.algorithm list
(** Intersection of the spec's shortlist with both compatibility checks,
    preserving the spec's order. *)
