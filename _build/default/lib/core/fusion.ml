open Homunculus_alchemy
module Dataset = Homunculus_ml.Dataset

module StringSet = Set.Make (String)

let feature_set spec = StringSet.of_list (Array.to_list (Model_spec.feature_names spec))

let feature_overlap a b =
  let fa = feature_set a and fb = feature_set b in
  let union = StringSet.union fa fb in
  if StringSet.is_empty union then 0.
  else
    float_of_int (StringSet.cardinal (StringSet.inter fa fb))
    /. float_of_int (StringSet.cardinal union)

let default_threshold = 0.5

let can_fuse ?(threshold = default_threshold) a b =
  let da = Model_spec.load a and db = Model_spec.load b in
  feature_overlap a b >= threshold
  && Model_spec.metric a = Model_spec.metric b
  && da.Model_spec.train.Dataset.n_classes = db.Model_spec.train.Dataset.n_classes

(* Project a dataset into a wider feature schema; absent features become 0. *)
let project (d : Dataset.t) union_names =
  let position name =
    let rec go i =
      if i >= Array.length d.Dataset.feature_names then None
      else if String.equal d.Dataset.feature_names.(i) name then Some i
      else go (i + 1)
    in
    go 0
  in
  let columns = Array.map position union_names in
  let x =
    Array.map
      (fun row ->
        Array.map (function Some c -> row.(c) | None -> 0.) columns)
      d.Dataset.x
  in
  Dataset.create ~feature_names:union_names ~x ~y:(Array.copy d.Dataset.y)
    ~n_classes:d.Dataset.n_classes ()

let fuse ~name a b =
  let da = Model_spec.load a and db = Model_spec.load b in
  if da.Model_spec.train.Dataset.n_classes <> db.Model_spec.train.Dataset.n_classes
  then invalid_arg "Fusion.fuse: label spaces disagree";
  if Model_spec.metric a <> Model_spec.metric b then
    invalid_arg "Fusion.fuse: metrics disagree";
  let union_names =
    let fa = Array.to_list (Model_spec.feature_names a) in
    let fb = Array.to_list (Model_spec.feature_names b) in
    Array.of_list (fa @ List.filter (fun n -> not (List.mem n fa)) fb)
  in
  let algorithms =
    let inter =
      List.filter
        (fun x -> List.mem x (Model_spec.algorithms b))
        (Model_spec.algorithms a)
    in
    if inter = [] then
      Model_spec.algorithms a @ Model_spec.algorithms b
    else inter
  in
  let loader () =
    let train =
      Dataset.concat_samples
        (project da.Model_spec.train union_names)
        (project db.Model_spec.train union_names)
    in
    let test =
      Dataset.concat_samples
        (project da.Model_spec.test union_names)
        (project db.Model_spec.test union_names)
    in
    Model_spec.data ~train ~test
  in
  Model_spec.make ~name ~metric:(Model_spec.metric a) ~algorithms ~loader ()
