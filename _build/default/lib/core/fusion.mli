(** Model fusion (paper §3.2.5): models learning from similar datasets are
    likely learning similar characteristics, so when two specs share enough
    features Homunculus builds a single model serving both — eliminating
    inter-model communication and redundant weights (Table 4 shows fusion
    cutting resource usage roughly in half). *)

open Homunculus_alchemy

val feature_overlap : Model_spec.t -> Model_spec.t -> float
(** Jaccard similarity of the two specs' feature-name sets, in [0, 1]. *)

val default_threshold : float
(** 0.5 — fuse when at least half the combined feature set is shared. *)

val can_fuse : ?threshold:float -> Model_spec.t -> Model_spec.t -> bool
(** Overlap above threshold, same metric, same label space. *)

val fuse : name:string -> Model_spec.t -> Model_spec.t -> Model_spec.t
(** A new spec over the union of the feature sets: samples from either
    source are projected into the union schema (missing features filled with
    0) and pooled, for both train and test splits. The fused spec's
    algorithm shortlist is the intersection of the sources' (falling back to
    the union if disjoint). @raise Invalid_argument if label spaces or
    metrics disagree. *)
