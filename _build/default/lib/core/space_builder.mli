(** Automated design-space creation (paper §3.2.2): derive bounded search
    spaces for each candidate algorithm, with bounds informed by the target
    platform's resources.

    For DNNs the space covers both neural architecture (depth, per-layer
    widths, activation) and training hyperparameters (learning rate, batch
    size, epochs). The per-layer width parameters are fixed-arity: widths
    beyond the sampled depth are simply unused by the evaluator, keeping the
    space rectangular as HyperMapper requires. *)

open Homunculus_alchemy

val max_dnn_layers : int
(** Upper bound on searched hidden-layer count (10, matching the deepest
    model the paper reports in Table 2). *)

val dnn_width_bound : Platform.t -> input_dim:int -> int
(** Largest hidden-layer width worth trying on this platform: the widest
    layer that can still meet II = 1 on a Taurus grid (or a generous default
    elsewhere), clamped to [4, 64]. This is how platform resources shrink
    the space before any search happens. *)

val batch_sizes : float array
(** Ordinal batch-size domain shared with the evaluator. *)

val build :
  Platform.t ->
  Model_spec.algorithm ->
  input_dim:int ->
  Homunculus_bo.Design_space.t
(** The search space for one (platform, algorithm) pair. *)

val hidden_layers_of_config : Homunculus_bo.Config.t -> int array
(** Decode a DNN config's depth + active widths. *)
