open Homunculus_alchemy
open Homunculus_backends
module Bo = Homunculus_bo

let verdict_summary (v : Resource.verdict) =
  let usage_part =
    String.concat ", "
      (List.map
         (fun u -> Printf.sprintf "%.0f %s" u.Resource.used u.Resource.resource)
         v.Resource.usages)
  in
  Printf.sprintf "%s, %.1f ns, %.3f Gpkt/s, %s" usage_part v.Resource.latency_ns
    v.Resource.throughput_gpps
    (if v.Resource.feasible then "FEASIBLE" else "INFEASIBLE")

let model_row (r : Compiler.model_result) =
  let a = r.Compiler.artifact in
  let usage_cols =
    String.concat " "
      (List.map
         (fun u -> Printf.sprintf "%6.0f" u.Resource.used)
         a.Evaluator.verdict.Resource.usages)
  in
  Printf.sprintf "%-24s %-7s %6d %7.2f  %s"
    (Model_spec.name r.Compiler.spec)
    (Model_spec.algorithm_to_string a.Evaluator.algorithm)
    (Model_ir.param_count a.Evaluator.model_ir)
    (100. *. a.Evaluator.objective)
    usage_cols

let model_table ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length header) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (model_row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let regret_series history =
  let curve = Bo.History.best_so_far history in
  let out = ref [] in
  Array.iteri
    (fun i v -> if v > neg_infinity then out := (i + 1, v) :: !out)
    curve;
  Array.of_list (List.rev !out)

let render_regret ?(width = 60) ?(height = 12) history =
  let series = regret_series history in
  if Array.length series = 0 then "(no feasible evaluations)"
  else begin
    let values = Array.map snd series in
    let lo = Homunculus_util.Stats.min values in
    let hi = Homunculus_util.Stats.max values in
    let span = if hi -. lo < 1e-9 then 1. else hi -. lo in
    let n = Array.length series in
    let grid = Array.make_matrix height width ' ' in
    for col = 0 to width - 1 do
      let idx = col * (n - 1) / Stdlib.max 1 (width - 1) in
      let _, v = series.(Stdlib.min idx (n - 1)) in
      let row =
        int_of_float ((v -. lo) /. span *. float_of_int (height - 1))
      in
      let row = height - 1 - row in
      grid.(row).(col) <- '*'
    done;
    let buf = Buffer.create 1024 in
    Array.iteri
      (fun i row ->
        let label =
          if i = 0 then Printf.sprintf "%6.2f |" (100. *. hi)
          else if i = height - 1 then Printf.sprintf "%6.2f |" (100. *. lo)
          else "       |"
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> row.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "       +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_string buf "\n        iteration 1 .. ";
    Buffer.add_string buf (string_of_int (Bo.History.length history));
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

let config_summary = Bo.Config.to_string

let result_summary (r : Compiler.result) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "platform: %s\nschedule: %s\n\n"
    (Platform.name r.Compiler.platform)
    (Schedule.to_string r.Compiler.schedule);
  Buffer.add_string buf
    (model_table
       ~header:
         (Printf.sprintf "%-24s %-7s %6s %7s  %s" "model" "algo" "params"
            "score" "resources")
       r.Compiler.models);
  Printf.bprintf buf "\npipeline: %s\n"
    (verdict_summary r.Compiler.combined.Schedule.verdict);
  Buffer.contents buf
