lib/core/report.ml: Array Buffer Compiler Evaluator Homunculus_alchemy Homunculus_backends Homunculus_bo Homunculus_util List Model_ir Model_spec Platform Printf Resource Schedule Stdlib String
