lib/core/space_builder.ml: Array Homunculus_alchemy Homunculus_backends Homunculus_bo Homunculus_util List Model_spec Platform Printf Stdlib Taurus Tofino
