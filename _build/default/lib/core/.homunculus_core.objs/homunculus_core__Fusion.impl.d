lib/core/fusion.ml: Array Homunculus_alchemy Homunculus_ml List Model_spec Set String
