lib/core/candidate.mli: Homunculus_alchemy Model_spec Platform
