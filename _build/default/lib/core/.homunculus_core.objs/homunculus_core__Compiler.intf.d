lib/core/compiler.mli: Evaluator Homunculus_alchemy Homunculus_backends Homunculus_bo Model_spec Platform Schedule
