lib/core/fusion.mli: Homunculus_alchemy Model_spec
