lib/core/space_builder.mli: Homunculus_alchemy Homunculus_bo Model_spec Platform
