lib/core/report.mli: Compiler Homunculus_backends Homunculus_bo
