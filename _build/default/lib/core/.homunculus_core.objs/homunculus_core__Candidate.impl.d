lib/core/candidate.ml: Array Homunculus_alchemy Homunculus_backends Homunculus_ml List Model_ir Model_spec Platform Resource
