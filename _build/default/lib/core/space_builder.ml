open Homunculus_alchemy
open Homunculus_backends
module Bo = Homunculus_bo
module Mathx = Homunculus_util.Mathx

let max_dnn_layers = 10

let dnn_width_bound platform ~input_dim =
  let raw =
    match platform.Platform.target with
    | Platform.Taurus grid ->
        (* Widest single layer at II=1:
           ceil(input/vec) * ceil(w/lanes) <= available CUs. *)
        let in_cols = Mathx.ceil_div input_dim grid.Taurus.vec_width in
        let max_pairs = Taurus.available_cus grid / Stdlib.max 1 in_cols in
        max_pairs * grid.Taurus.lanes
    | Platform.Fpga _ -> 64
    | Platform.Tofino _ -> 8 (* binarized slices explode past this *)
  in
  Mathx.clamp_int ~lo:4 ~hi:64 raw

let batch_sizes = [| 16.; 32.; 64.; 128. |]

let dnn_space platform ~input_dim =
  let width_hi = dnn_width_bound platform ~input_dim in
  let width_params =
    List.init max_dnn_layers (fun i ->
        Bo.Param.int (Printf.sprintf "width%d" i) ~lo:2 ~hi:width_hi)
  in
  Bo.Design_space.create
    ([
       Bo.Param.int "n_layers" ~lo:1 ~hi:max_dnn_layers;
       Bo.Param.real "learning_rate" ~log_scale:true ~lo:1e-4 ~hi:1e-1;
       Bo.Param.ordinal "batch_size" batch_sizes;
       Bo.Param.int "epochs" ~lo:8 ~hi:40;
       Bo.Param.categorical "activation" [| "relu"; "tanh" |];
       Bo.Param.real "weight_decay" ~log_scale:true ~lo:1e-7 ~hi:1e-2;
       Bo.Param.ordinal "lr_decay" [| 0.9; 0.97; 1.0 |];
     ]
    @ width_params)

let kmeans_space platform =
  let k_hi =
    match platform.Platform.target with
    | Platform.Tofino device -> Stdlib.max 1 device.Tofino.n_tables
    | Platform.Taurus _ | Platform.Fpga _ -> 16
  in
  (* The search is over the cluster count only (the quantity MATs pay for);
     Lloyd restarts and iteration caps are fixed robust values inside the
     evaluator so the objective is a stable function of k.
     k = 1 is the degenerate single-table fallback of Fig. 7's K1. *)
  Bo.Design_space.create [ Bo.Param.int "k" ~lo:1 ~hi:k_hi ]

let svm_space =
  Bo.Design_space.create
    [
      Bo.Param.real "lambda" ~log_scale:true ~lo:1e-6 ~hi:1e-2;
      Bo.Param.int "epochs" ~lo:5 ~hi:40;
    ]

let tree_space platform =
  let depth_hi =
    match platform.Platform.target with
    | Platform.Tofino device -> Stdlib.max 2 (device.Tofino.n_stages - 2)
    | Platform.Taurus _ | Platform.Fpga _ -> 14
  in
  Bo.Design_space.create
    [
      Bo.Param.int "max_depth" ~lo:2 ~hi:depth_hi;
      Bo.Param.int "min_samples_leaf" ~lo:1 ~hi:16;
    ]

let build platform algo ~input_dim =
  match algo with
  | Model_spec.Dnn -> dnn_space platform ~input_dim
  | Model_spec.Kmeans -> kmeans_space platform
  | Model_spec.Svm -> svm_space
  | Model_spec.Tree -> tree_space platform

let hidden_layers_of_config config =
  let n = Bo.Config.get_int config "n_layers" in
  Array.init n (fun i ->
      Bo.Config.get_int config (Printf.sprintf "width%d" i))
