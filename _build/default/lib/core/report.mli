(** Human-readable reporting of compiler results: the paper-style tables and
    regret curves the bench harness prints. *)

val model_row : Compiler.model_result -> string
(** One Table-2-style row: name, algorithm, #params, objective (percent),
    and the platform's resource columns. *)

val model_table : header:string -> Compiler.model_result list -> string

val verdict_summary : Homunculus_backends.Resource.verdict -> string
(** "24 CU, 48 MU, 40.0 ns, 1.000 Gpkt/s, FEASIBLE"-style line. *)

val regret_series : Homunculus_bo.History.t -> (int * float) array
(** (iteration, best-so-far) pairs with the [neg_infinity] prefix removed. *)

val render_regret :
  ?width:int -> ?height:int -> Homunculus_bo.History.t -> string
(** ASCII plot of the regret curve (Figs. 4 and 7). *)

val config_summary : Homunculus_bo.Config.t -> string

val result_summary : Compiler.result -> string
(** Multi-line overview: per-model rows plus the schedule-level verdict. *)
