(** Alchemy's compositional operators (paper §3.1, Table 1): models combine
    sequentially ([>], here {!seq}) or in parallel ([|], here {!par}) into a
    DAG of any depth, as long as the resources permit. *)

type t =
  | Model of Model_spec.t
  | Seq of t * t  (** left feeds right *)
  | Par of t * t  (** both run on the same packet stream *)

val model : Model_spec.t -> t
val seq : t -> t -> t
val par : t -> t -> t

val ( >>> ) : t -> t -> t
(** Infix [seq] — the paper's [mdl1 > mdl2]. *)

val ( ||| ) : t -> t -> t
(** Infix [par] — the paper's [mdl1 | mdl2]. *)

val models : t -> Model_spec.t list
(** Left-to-right leaf order. *)

val n_models : t -> int
val depth : t -> int
(** Longest sequential chain length (pipeline stages). *)

val width : t -> int
(** Maximum number of models active in parallel. *)

val to_string : t -> string
(** Paper notation, e.g. ["(ad > (ad | ad)) > ad"]. *)

type combined = {
  verdict : Homunculus_backends.Resource.verdict;
  per_model : (string * Homunculus_backends.Resource.verdict) list;
}

val combine :
  t ->
  perf:Homunculus_backends.Resource.perf ->
  estimate:(Model_spec.t -> Homunculus_backends.Resource.verdict) ->
  combined
(** Fold per-model verdicts into a schedule-level verdict: resource usages
    add (shared availability), sequential latencies add, parallel latencies
    take the max, and throughput is the minimum over all models — the
    consistency rule of §3.2.1 (a 1 Gpkt/s model feeding a 0.5 Gpkt/s model
    runs at 0.5 Gpkt/s). *)
