open Homunculus_backends

type target =
  | Taurus of Taurus.grid
  | Tofino of Tofino.device
  | Fpga of Fpga.device

type t = { target : target; perf : Resource.perf }

let taurus ?(grid = Taurus.default_grid) ?(perf = Resource.line_rate) () =
  { target = Taurus grid; perf }

let tofino ?(device = Tofino.default_device) ?(perf = Resource.line_rate) () =
  { target = Tofino device; perf }

let fpga ?(device = Fpga.alveo_u250) ?perf () =
  let perf =
    match perf with
    | Some p -> p
    | None ->
        Resource.perf ~min_throughput_gpps:device.Fpga.clock_ghz
          ~max_latency_ns:1500.
  in
  { target = Fpga device; perf }

let constrain t ?min_throughput_gpps ?max_latency_ns () =
  let p = t.perf in
  let p =
    Resource.perf
      ~min_throughput_gpps:
        (Option.value min_throughput_gpps ~default:p.Resource.min_throughput_gpps)
      ~max_latency_ns:
        (Option.value max_latency_ns ~default:p.Resource.max_latency_ns)
  in
  { t with perf = p }

let with_resources t ~rows ~cols =
  match t.target with
  | Taurus _ -> { t with target = Taurus (Taurus.grid_with_size ~rows ~cols) }
  | Tofino _ | Fpga _ ->
      invalid_arg "Platform.with_resources: only Taurus grids have rows/cols"

let with_tables t n =
  match t.target with
  | Tofino _ -> { t with target = Tofino (Tofino.device_with_tables n) }
  | Taurus _ | Fpga _ ->
      invalid_arg "Platform.with_tables: only Tofino targets have MAT budgets"

let name t =
  match t.target with
  | Taurus g -> Printf.sprintf "taurus-%dx%d" g.Taurus.rows g.Taurus.cols
  | Tofino d -> Printf.sprintf "tofino-%dmat" d.Tofino.n_tables
  | Fpga d -> d.Fpga.name

let perf t = t.perf

let supports t (algo : Model_spec.algorithm) =
  match (t.target, algo) with
  | (Taurus _ | Fpga _), (Model_spec.Dnn | Kmeans | Svm | Tree) -> true
  | Tofino _, (Model_spec.Kmeans | Svm | Tree) -> true
  | Tofino _, Model_spec.Dnn -> false

let estimate t model =
  match t.target with
  | Taurus grid -> Taurus.estimate grid t.perf model
  | Tofino device -> Tofino.estimate_model device t.perf model
  | Fpga device -> Fpga.estimate device t.perf model
