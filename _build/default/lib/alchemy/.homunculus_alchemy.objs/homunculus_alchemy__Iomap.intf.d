lib/alchemy/iomap.mli: Schedule
