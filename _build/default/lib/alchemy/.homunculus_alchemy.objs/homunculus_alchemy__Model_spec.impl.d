lib/alchemy/model_spec.ml: Homunculus_ml
