lib/alchemy/platform.ml: Fpga Homunculus_backends Model_spec Option Printf Resource Taurus Tofino
