lib/alchemy/schedule.mli: Homunculus_backends Model_spec
