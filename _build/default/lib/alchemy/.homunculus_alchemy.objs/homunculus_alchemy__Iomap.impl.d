lib/alchemy/iomap.ml: List Model_spec Printf Schedule
