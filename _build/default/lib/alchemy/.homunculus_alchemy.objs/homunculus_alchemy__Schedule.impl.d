lib/alchemy/schedule.ml: Hashtbl Homunculus_backends List Model_spec Printf Stdlib
