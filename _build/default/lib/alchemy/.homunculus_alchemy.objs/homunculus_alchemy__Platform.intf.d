lib/alchemy/platform.mli: Fpga Homunculus_backends Model_ir Model_spec Resource Taurus Tofino
