lib/alchemy/model_spec.mli: Homunculus_ml
