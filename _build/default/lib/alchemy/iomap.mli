(** Alchemy's [IOMap] construct (paper §3.1, Table 1): declares how model
    inputs/outputs connect to each other and to the outside world (packet
    headers in, classification verdicts out).

    A connection is a directed wire [source -> sink]. Endpoints are either
    external ports or named model ports. Validation checks the wiring
    against a schedule: every model input driven exactly once, drivers exist,
    and no model feeds itself. *)

type endpoint =
  | External of string  (** e.g. "packet_in", "verdict_out" *)
  | Model_port of { model : string; port : string }

val endpoint_to_string : endpoint -> string

type t

val empty : t
val connect : t -> src:endpoint -> dst:endpoint -> t
(** @raise Invalid_argument when [src = dst]. *)

val connections : t -> (endpoint * endpoint) list

val passthrough : Schedule.t -> t
(** The default wiring the compiler synthesizes when the user gives no
    mapper: packet features feed every chain head, sequential edges wire
    output to input, and chain tails drive the external verdict. *)

val validate : t -> Schedule.t -> (unit, string list) result
(** All model endpoints reference schedule models; every model's "in" port
    has at least one driver (fan-in from several upstreams is legal, as in
    [(a | b) > c]); no self-loops; no duplicated wires. Returns all problems
    found. *)
