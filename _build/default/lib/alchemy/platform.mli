(** Alchemy's [Platforms] construct: a physical target plus its performance
    and resource constraints (paper §3.1, Table 1: [Platforms < (performance,
    resources)]). *)

open Homunculus_backends

type target =
  | Taurus of Taurus.grid
  | Tofino of Tofino.device
  | Fpga of Fpga.device

type t = { target : target; perf : Resource.perf }

val taurus : ?grid:Taurus.grid -> ?perf:Resource.perf -> unit -> t
(** Defaults: 16x16 grid, 1 Gpkt/s @ 500 ns (the paper's evaluation
    constraint). *)

val tofino : ?device:Tofino.device -> ?perf:Resource.perf -> unit -> t
(** Defaults: 32 tables, 1 Gpkt/s @ 500 ns. *)

val fpga : ?device:Fpga.device -> ?perf:Resource.perf -> unit -> t
(** Defaults: Alveo U250 at its own clock rate (0.322 Gpkt/s @ 1500 ns). *)

val constrain :
  t ->
  ?min_throughput_gpps:float ->
  ?max_latency_ns:float ->
  unit ->
  t
(** The [<] operator: tighten performance constraints. *)

val with_resources : t -> rows:int -> cols:int -> t
(** Resize a Taurus grid ("resources": rows 16, cols 16 in the running
    example, Fig. 3). @raise Invalid_argument for non-Taurus targets. *)

val with_tables : t -> int -> t
(** Shrink/grow a Tofino table budget (Fig. 7's K5..K1).
    @raise Invalid_argument for non-Tofino targets. *)

val name : t -> string
val perf : t -> Resource.perf

val supports : t -> Model_spec.algorithm -> bool
(** Structural capability filter (paper §3.2.1, candidate selection): MAT
    switches support the table-mappable algorithms (KMeans/SVM/Tree) plus
    only severely size-limited binarized DNNs; Taurus and FPGAs run all
    four. The fine-grained size check is [estimate]. *)

val estimate : t -> Model_ir.t -> Resource.verdict
(** Ask the backend for resources/latency/throughput/feasibility. *)
