type endpoint =
  | External of string
  | Model_port of { model : string; port : string }

let endpoint_to_string = function
  | External name -> name
  | Model_port { model; port } -> model ^ "." ^ port

type t = { connections : (endpoint * endpoint) list }

let empty = { connections = [] }

let connect t ~src ~dst =
  if src = dst then invalid_arg "Iomap.connect: self-wire";
  { connections = t.connections @ [ (src, dst) ] }

let connections t = t.connections

let in_port model = Model_port { model; port = "in" }
let out_port model = Model_port { model; port = "out" }

let passthrough schedule =
  (* Wire the schedule structurally: heads get packet_in, Seq edges chain
     tails to heads, and final tails drive verdict_out. *)
  let rec heads = function
    | Schedule.Model spec -> [ Model_spec.name spec ]
    | Schedule.Seq (a, _) -> heads a
    | Schedule.Par (a, b) -> heads a @ heads b
  in
  let rec tails = function
    | Schedule.Model spec -> [ Model_spec.name spec ]
    | Schedule.Seq (_, b) -> tails b
    | Schedule.Par (a, b) -> tails a @ tails b
  in
  let rec internal_edges = function
    | Schedule.Model _ -> []
    | Schedule.Seq (a, b) ->
        internal_edges a @ internal_edges b
        @ List.concat_map
            (fun ta -> List.map (fun hb -> (out_port ta, in_port hb)) (heads b))
            (tails a)
    | Schedule.Par (a, b) -> internal_edges a @ internal_edges b
  in
  let entry =
    List.map (fun h -> (External "packet_in", in_port h)) (heads schedule)
  in
  let exits =
    List.map (fun t -> (out_port t, External "verdict_out")) (tails schedule)
  in
  { connections = entry @ internal_edges schedule @ exits }

let validate t schedule =
  let model_names = List.map Model_spec.name (Schedule.models schedule) in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let check_endpoint = function
    | External _ -> ()
    | Model_port { model; port } ->
        if not (List.mem model model_names) then
          problem "unknown model '%s' referenced by port '%s'" model port
  in
  List.iter
    (fun (src, dst) ->
      check_endpoint src;
      check_endpoint dst;
      match (src, dst) with
      | Model_port { model = m1; _ }, Model_port { model = m2; _ } when m1 = m2
        ->
          problem "model '%s' feeds itself" m1
      | (External _ | Model_port _), (External _ | Model_port _) -> ())
    t.connections;
  (* Fan-in is legal — a model may merge several upstreams, as in
     (a | b) > c — but the exact same wire appearing twice is a bug. *)
  let rec find_duplicate = function
    | [] -> None
    | wire :: rest -> if List.mem wire rest then Some wire else find_duplicate rest
  in
  (match find_duplicate t.connections with
  | Some (src, dst) ->
      problem "duplicate wire %s -> %s" (endpoint_to_string src)
        (endpoint_to_string dst)
  | None -> ());
  List.iter
    (fun name ->
      let drivers =
        List.filter
          (fun (_, dst) ->
            match dst with
            | Model_port { model; port } -> model = name && port = "in"
            | External _ -> false)
          t.connections
      in
      if drivers = [] then problem "model '%s' input is not driven" name)
    model_names;
  match List.rev !problems with [] -> Ok () | ps -> Error ps
