module Resource = Homunculus_backends.Resource

type t = Model of Model_spec.t | Seq of t * t | Par of t * t

let model spec = Model spec
let seq a b = Seq (a, b)
let par a b = Par (a, b)
let ( >>> ) = seq
let ( ||| ) = par

let rec models = function
  | Model spec -> [ spec ]
  | Seq (a, b) | Par (a, b) -> models a @ models b

let n_models t = List.length (models t)

let rec depth = function
  | Model _ -> 1
  | Seq (a, b) -> depth a + depth b
  | Par (a, b) -> Stdlib.max (depth a) (depth b)

let rec width = function
  | Model _ -> 1
  | Seq (a, b) -> Stdlib.max (width a) (width b)
  | Par (a, b) -> width a + width b

let rec to_string = function
  | Model spec -> Model_spec.name spec
  | Seq (a, b) -> Printf.sprintf "(%s > %s)" (to_string a) (to_string b)
  | Par (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)

type combined = {
  verdict : Resource.verdict;
  per_model : (string * Resource.verdict) list;
}

(* Usage lists add component-wise; the resources are shared hardware so the
   availability stays constant per name. *)
let add_usages a b =
  let merged = Hashtbl.create 8 in
  let order = ref [] in
  let absorb u =
    match Hashtbl.find_opt merged u.Resource.resource with
    | Some prev ->
        Hashtbl.replace merged u.Resource.resource
          { prev with Resource.used = prev.Resource.used +. u.Resource.used }
    | None ->
        Hashtbl.add merged u.Resource.resource u;
        order := u.Resource.resource :: !order
  in
  List.iter absorb a;
  List.iter absorb b;
  List.rev_map (Hashtbl.find merged) !order

type folded = {
  usages : Resource.usage list;
  latency_ns : float;
  throughput_gpps : float;
}

let combine t ~perf ~estimate =
  let per_model = ref [] in
  let rec fold node =
    match node with
    | Model spec ->
        let v = estimate spec in
        per_model := (Model_spec.name spec, v) :: !per_model;
        {
          usages = v.Resource.usages;
          latency_ns = v.Resource.latency_ns;
          throughput_gpps = v.Resource.throughput_gpps;
        }
    | Seq (a, b) ->
        let fa = fold a and fb = fold b in
        {
          usages = add_usages fa.usages fb.usages;
          latency_ns = fa.latency_ns +. fb.latency_ns;
          throughput_gpps = Stdlib.min fa.throughput_gpps fb.throughput_gpps;
        }
    | Par (a, b) ->
        let fa = fold a and fb = fold b in
        {
          usages = add_usages fa.usages fb.usages;
          latency_ns = Stdlib.max fa.latency_ns fb.latency_ns;
          throughput_gpps = Stdlib.min fa.throughput_gpps fb.throughput_gpps;
        }
  in
  let f = fold t in
  let verdict =
    Resource.check perf ~usages:f.usages ~latency_ns:f.latency_ns
      ~throughput_gpps:f.throughput_gpps
  in
  { verdict; per_model = List.rev !per_model }
