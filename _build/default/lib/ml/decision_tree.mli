(** CART decision trees (classification by Gini impurity, regression by
    variance reduction).

    Trees serve two roles: (1) an algorithm IIsy can map onto match-action
    tables (one table per tree level), and (2) the base learner of the random
    forests used as the Bayesian-optimization surrogate. *)

type node =
  | Leaf of { distribution : float array }
      (** class probabilities (classification) or singleton mean (regression) *)
  | Split of { feature : int; threshold : float; left : node; right : node }
      (** samples with [x.(feature) <= threshold] go left *)

type params = {
  max_depth : int;
  min_samples_leaf : int;
  m_try : int option;
      (** number of candidate features per split; [None] = all features *)
}

val default_params : params
(** depth 12, min leaf 2, all features. *)

val depth : node -> int
val n_leaves : node -> int
val n_nodes : node -> int

module Classifier : sig
  type t

  val fit :
    ?rng:Homunculus_util.Rng.t ->
    ?params:params ->
    x:float array array ->
    y:int array ->
    n_classes:int ->
    unit ->
    t
  (** [rng] is only needed when [params.m_try] is set. *)

  val root : t -> node
  val n_classes : t -> int
  val predict_proba : t -> float array -> float array
  val predict : t -> float array -> int
  val predict_all : t -> float array array -> int array
end

module Regressor : sig
  type t

  val fit :
    ?rng:Homunculus_util.Rng.t ->
    ?params:params ->
    x:float array array ->
    y:float array ->
    unit ->
    t

  val root : t -> node
  val predict : t -> float array -> float
end
