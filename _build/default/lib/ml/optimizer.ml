type algo =
  | Sgd of { lr : float; momentum : float; weight_decay : float }
  | Adam of {
      lr : float;
      beta1 : float;
      beta2 : float;
      eps : float;
      weight_decay : float;
    }

let sgd ?(momentum = 0.) ?(weight_decay = 0.) ~lr () =
  Sgd { lr; momentum; weight_decay }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ?(weight_decay = 0.)
    ~lr () =
  Adam { lr; beta1; beta2; eps; weight_decay }

type state =
  | Sgd_state of float array array  (* velocity per buffer *)
  | Adam_state of { m : float array array; v : float array array; mutable t : int }

type t = {
  algo : algo;
  state : state;
  sizes : int array;
  mutable live_lr : float;
}

let learning_rate = function Sgd { lr; _ } -> lr | Adam { lr; _ } -> lr

let create algo sizes =
  let buffers () = Array.map (fun n -> Array.make n 0.) sizes in
  let state =
    match algo with
    | Sgd _ -> Sgd_state (buffers ())
    | Adam _ -> Adam_state { m = buffers (); v = buffers (); t = 0 }
  in
  { algo; state; sizes; live_lr = learning_rate algo }

let check t params grads =
  if
    Array.length params <> Array.length t.sizes
    || Array.length grads <> Array.length t.sizes
  then invalid_arg "Optimizer.step: buffer count mismatch";
  Array.iteri
    (fun i n ->
      if Array.length params.(i) <> n || Array.length grads.(i) <> n then
        invalid_arg "Optimizer.step: buffer size mismatch")
    t.sizes

let step t ~params ~grads =
  check t params grads;
  let lr = t.live_lr in
  match (t.algo, t.state) with
  | Sgd { momentum; weight_decay; _ }, Sgd_state velocity ->
      Array.iteri
        (fun b p ->
          let g = grads.(b) and v = velocity.(b) in
          for i = 0 to Array.length p - 1 do
            if weight_decay > 0. then p.(i) <- p.(i) *. (1. -. (lr *. weight_decay));
            v.(i) <- (momentum *. v.(i)) -. (lr *. g.(i));
            p.(i) <- p.(i) +. v.(i)
          done)
        params
  | Adam { beta1; beta2; eps; weight_decay; _ }, Adam_state st ->
      st.t <- st.t + 1;
      let bc1 = 1. -. (beta1 ** float_of_int st.t) in
      let bc2 = 1. -. (beta2 ** float_of_int st.t) in
      Array.iteri
        (fun b p ->
          let g = grads.(b) and m = st.m.(b) and v = st.v.(b) in
          for i = 0 to Array.length p - 1 do
            if weight_decay > 0. then p.(i) <- p.(i) *. (1. -. (lr *. weight_decay));
            m.(i) <- (beta1 *. m.(i)) +. ((1. -. beta1) *. g.(i));
            v.(i) <- (beta2 *. v.(i)) +. ((1. -. beta2) *. g.(i) *. g.(i));
            let m_hat = m.(i) /. bc1 and v_hat = v.(i) /. bc2 in
            p.(i) <- p.(i) -. (lr *. m_hat /. (sqrt v_hat +. eps))
          done)
        params
  | Sgd _, Adam_state _ | Adam _, Sgd_state _ ->
      assert false (* create ties algo and state together *)

let algo t = t.algo

let set_learning_rate t lr =
  if lr <= 0. then invalid_arg "Optimizer.set_learning_rate: non-positive rate";
  t.live_lr <- lr

let current_learning_rate t = t.live_lr
