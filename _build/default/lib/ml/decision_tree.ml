module Rng = Homunculus_util.Rng

type node =
  | Leaf of { distribution : float array }
  | Split of { feature : int; threshold : float; left : node; right : node }

type params = { max_depth : int; min_samples_leaf : int; m_try : int option }

let default_params = { max_depth = 12; min_samples_leaf = 2; m_try = None }

let rec depth = function
  | Leaf _ -> 0
  | Split { left; right; _ } -> 1 + Stdlib.max (depth left) (depth right)

let rec n_leaves = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> n_leaves left + n_leaves right

let rec n_nodes = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> 1 + n_nodes left + n_nodes right

let candidate_features rng ~n_features ~m_try =
  match (rng, m_try) with
  | Some rng, Some m when m < n_features -> Rng.sample_indices rng ~n:n_features ~k:m
  | _, _ -> Array.init n_features (fun j -> j)

(* Shared split search: [stat] abstracts the impurity bookkeeping.
   Values are sorted per feature; we sweep the boundary left-to-right and
   evaluate the weighted impurity at each distinct-value boundary. *)

let gini counts total =
  if total = 0. then 0.
  else
    let acc = ref 1. in
    Array.iter
      (fun c ->
        let p = c /. total in
        acc := !acc -. (p *. p))
      counts;
    !acc

type split_result = { feature : int; threshold : float; score : float }

let best_split_classification ~x ~y ~n_classes ~indices ~features ~min_leaf =
  let n = Array.length indices in
  let best = ref None in
  Array.iter
    (fun f ->
      let pairs =
        Array.map (fun i -> (x.(i).(f), y.(i))) indices
      in
      Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
      let left = Array.make n_classes 0. in
      let right = Array.make n_classes 0. in
      Array.iter (fun (_, label) -> right.(label) <- right.(label) +. 1.) pairs;
      for cut = 1 to n - 1 do
        let _, label = pairs.(cut - 1) in
        left.(label) <- left.(label) +. 1.;
        right.(label) <- right.(label) -. 1.;
        let v_prev = fst pairs.(cut - 1) and v_next = fst pairs.(cut) in
        if v_prev < v_next && cut >= min_leaf && n - cut >= min_leaf then begin
          let nl = float_of_int cut and nr = float_of_int (n - cut) in
          let score =
            ((nl *. gini left nl) +. (nr *. gini right nr)) /. float_of_int n
          in
          match !best with
          | Some b when b.score <= score -> ()
          | Some _ | None ->
              best :=
                Some { feature = f; threshold = (v_prev +. v_next) /. 2.; score }
        end
      done)
    features;
  !best

let best_split_regression ~x ~y ~indices ~features ~min_leaf =
  let n = Array.length indices in
  let best = ref None in
  Array.iter
    (fun f ->
      let pairs = Array.map (fun i -> (x.(i).(f), y.(i))) indices in
      Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
      let sum_r = ref 0. and sq_r = ref 0. in
      Array.iter
        (fun (_, v) ->
          sum_r := !sum_r +. v;
          sq_r := !sq_r +. (v *. v))
        pairs;
      let sum_l = ref 0. and sq_l = ref 0. in
      for cut = 1 to n - 1 do
        let _, v = pairs.(cut - 1) in
        sum_l := !sum_l +. v;
        sq_l := !sq_l +. (v *. v);
        sum_r := !sum_r -. v;
        sq_r := !sq_r -. (v *. v);
        let v_prev = fst pairs.(cut - 1) and v_next = fst pairs.(cut) in
        if v_prev < v_next && cut >= min_leaf && n - cut >= min_leaf then begin
          let nl = float_of_int cut and nr = float_of_int (n - cut) in
          (* Sum of squared errors on each side. *)
          let sse_l = !sq_l -. (!sum_l *. !sum_l /. nl) in
          let sse_r = !sq_r -. (!sum_r *. !sum_r /. nr) in
          let score = sse_l +. sse_r in
          match !best with
          | Some b when b.score <= score -> ()
          | Some _ | None ->
              best :=
                Some { feature = f; threshold = (v_prev +. v_next) /. 2.; score }
        end
      done)
    features;
  !best

let partition ~x ~indices ~feature ~threshold =
  let left = ref [] and right = ref [] in
  Array.iter
    (fun i ->
      if x.(i).(feature) <= threshold then left := i :: !left
      else right := i :: !right)
    indices;
  (Array.of_list (List.rev !left), Array.of_list (List.rev !right))

let rec predict_node node sample =
  match node with
  | Leaf { distribution } -> distribution
  | Split { feature; threshold; left; right } ->
      if sample.(feature) <= threshold then predict_node left sample
      else predict_node right sample

module Classifier = struct
  type t = { root : node; n_classes : int }

  let class_distribution ~y ~n_classes indices =
    let counts = Array.make n_classes 0. in
    Array.iter (fun i -> counts.(y.(i)) <- counts.(y.(i)) +. 1.) indices;
    Homunculus_util.Stats.normalize counts

  let fit ?rng ?(params = default_params) ~x ~y ~n_classes () =
    let n = Array.length x in
    if n = 0 then invalid_arg "Decision_tree.Classifier.fit: empty input";
    if Array.length y <> n then
      invalid_arg "Decision_tree.Classifier.fit: |x| <> |y|";
    let n_features = Array.length x.(0) in
    let rec build indices d =
      let leaf () = Leaf { distribution = class_distribution ~y ~n_classes indices } in
      let pure =
        let first = y.(indices.(0)) in
        Array.for_all (fun i -> y.(i) = first) indices
      in
      if
        d >= params.max_depth || pure
        || Array.length indices < 2 * params.min_samples_leaf
      then leaf ()
      else
        let features = candidate_features rng ~n_features ~m_try:params.m_try in
        match
          best_split_classification ~x ~y ~n_classes ~indices ~features
            ~min_leaf:params.min_samples_leaf
        with
        | None -> leaf ()
        | Some { feature; threshold; _ } ->
            let li, ri = partition ~x ~indices ~feature ~threshold in
            if Array.length li = 0 || Array.length ri = 0 then leaf ()
            else
              Split
                {
                  feature;
                  threshold;
                  left = build li (d + 1);
                  right = build ri (d + 1);
                }
    in
    let root = build (Array.init n (fun i -> i)) 0 in
    { root; n_classes }

  let root t = t.root
  let n_classes t = t.n_classes
  let predict_proba t sample = predict_node t.root sample
  let predict t sample = Homunculus_util.Stats.argmax (predict_proba t sample)
  let predict_all t samples = Array.map (predict t) samples
end

module Regressor = struct
  type t = { root : node }

  let mean_of ~y indices =
    let acc = ref 0. in
    Array.iter (fun i -> acc := !acc +. y.(i)) indices;
    !acc /. float_of_int (Array.length indices)

  let fit ?rng ?(params = default_params) ~x ~y () =
    let n = Array.length x in
    if n = 0 then invalid_arg "Decision_tree.Regressor.fit: empty input";
    if Array.length y <> n then
      invalid_arg "Decision_tree.Regressor.fit: |x| <> |y|";
    let n_features = Array.length x.(0) in
    let rec build indices d =
      let leaf () = Leaf { distribution = [| mean_of ~y indices |] } in
      if d >= params.max_depth || Array.length indices < 2 * params.min_samples_leaf
      then leaf ()
      else
        let features = candidate_features rng ~n_features ~m_try:params.m_try in
        match
          best_split_regression ~x ~y ~indices ~features
            ~min_leaf:params.min_samples_leaf
        with
        | None -> leaf ()
        | Some { feature; threshold; _ } ->
            let li, ri = partition ~x ~indices ~feature ~threshold in
            if Array.length li = 0 || Array.length ri = 0 then leaf ()
            else
              Split
                {
                  feature;
                  threshold;
                  left = build li (d + 1);
                  right = build ri (d + 1);
                }
    in
    { root = build (Array.init n (fun i -> i)) 0 }

  let root t = t.root
  let predict t sample = (predict_node t.root sample).(0)
end
