module Rng = Homunculus_util.Rng

type binary = { w : float array; b : float }

let fit_binary rng ?(lambda = 1e-4) ?(epochs = 20) ~x ~y () =
  let n = Array.length x in
  if n = 0 then invalid_arg "Svm.fit_binary: empty input";
  if Array.length y <> n then invalid_arg "Svm.fit_binary: |x| <> |y|";
  let d = Array.length x.(0) in
  let w = Array.make d 0. in
  let b = ref 0. in
  let t = ref 0 in
  for _epoch = 1 to epochs do
    for _step = 1 to n do
      incr t;
      let i = Rng.int rng n in
      let eta = 1. /. (lambda *. float_of_int !t) in
      let label = if y.(i) = 1 then 1. else -1. in
      let margin =
        let acc = ref !b in
        Array.iteri (fun j xj -> acc := !acc +. (w.(j) *. xj)) x.(i);
        label *. !acc
      in
      (* Regularization shrink, then hinge sub-gradient step when violated. *)
      let shrink = 1. -. (eta *. lambda) in
      for j = 0 to d - 1 do
        w.(j) <- w.(j) *. shrink
      done;
      if margin < 1. then begin
        for j = 0 to d - 1 do
          w.(j) <- w.(j) +. (eta *. label *. x.(i).(j))
        done;
        b := !b +. (eta *. label)
      end
    done
  done;
  { w; b = !b }

let decision m x =
  let acc = ref m.b in
  Array.iteri (fun j xj -> acc := !acc +. (m.w.(j) *. xj)) x;
  !acc

let predict_binary m x = if decision m x >= 0. then 1 else 0
let weights m = Array.copy m.w
let bias m = m.b

type t = { machines : binary array; features : int }

let fit rng ?lambda ?epochs (d : Dataset.t) =
  let n_classes = d.Dataset.n_classes in
  let machines =
    Array.init n_classes (fun c ->
        let y = Array.map (fun label -> if label = c then 1 else 0) d.Dataset.y in
        fit_binary rng ?lambda ?epochs ~x:d.Dataset.x ~y ())
  in
  { machines; features = Dataset.n_features d }

let predict t x =
  let scores = Array.map (fun m -> decision m x) t.machines in
  Homunculus_util.Stats.argmax scores

let predict_all t xs = Array.map (predict t) xs

let n_classes t = Array.length t.machines
let n_features t = t.features
let class_weights t = Array.map (fun m -> Array.copy m.w) t.machines
let class_biases t = Array.map (fun m -> m.b) t.machines
