module Mathx = Homunculus_util.Mathx

type t = Softmax_cross_entropy | Mse

let value t ~logits ~target =
  match t with
  | Softmax_cross_entropy ->
      let lse = Mathx.log_sum_exp logits in
      let acc = ref 0. in
      Array.iteri
        (fun i ti -> if ti > 0. then acc := !acc -. (ti *. (logits.(i) -. lse)))
        target;
      !acc
  | Mse ->
      let acc = ref 0. in
      Array.iteri
        (fun i ti ->
          let d = logits.(i) -. ti in
          acc := !acc +. (d *. d))
        target;
      !acc /. float_of_int (Array.length logits)

let gradient t ~logits ~target =
  match t with
  | Softmax_cross_entropy ->
      let p = Mathx.softmax logits in
      Array.mapi (fun i pi -> pi -. target.(i)) p
  | Mse ->
      let n = float_of_int (Array.length logits) in
      Array.mapi (fun i li -> 2. *. (li -. target.(i)) /. n) logits

let probabilities t logits =
  match t with
  | Softmax_cross_entropy -> Mathx.softmax logits
  | Mse -> Array.copy logits

let name = function
  | Softmax_cross_entropy -> "softmax_cross_entropy"
  | Mse -> "mse"
