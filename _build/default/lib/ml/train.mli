(** Mini-batch training loop with optional early stopping, playing the role
    Keras plays in the paper's optimization core (§3.2.4). *)

type config = {
  epochs : int;
  batch_size : int;
  optimizer : Optimizer.algo;
  patience : int option;
      (** stop after this many epochs without validation improvement *)
  shuffle_each_epoch : bool;
  lr_decay_per_epoch : float;
      (** multiply the learning rate by this after each epoch (1. = constant) *)
}

val default_config : config
(** 30 epochs, batch 32, Adam(1e-3), patience 5, constant learning rate. *)

type history = {
  train_loss : float array;  (** mean per-sample loss per epoch *)
  val_metric : float array;  (** empty when no validation set was given *)
  epochs_run : int;
}

val fit :
  Homunculus_util.Rng.t ->
  Mlp.t ->
  config ->
  ?validation:Dataset.t ->
  Dataset.t ->
  history
(** Trains in place. The validation metric is macro-F1 (binary F1 for
    two-class problems), which is also what early stopping monitors. *)

val evaluate_f1 : Mlp.t -> Dataset.t -> float
(** F1 in [0, 1]: binary F1 (positive class 1) for two-class datasets, macro
    F1 otherwise. *)

val evaluate_accuracy : Mlp.t -> Dataset.t -> float
