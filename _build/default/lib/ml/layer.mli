(** A fully connected (dense) layer: [a = act (W x + b)].

    Weights are stored as an [n_out x n_in] matrix so a forward pass is a
    single [Mat.matvec]. Gradient buffers live alongside the parameters and
    are accumulated across a mini-batch, then consumed by the optimizer. *)

open Homunculus_tensor

type t = {
  w : Mat.t;
  b : Vec.t;
  act : Activation.t;
  grad_w : Mat.t;
  grad_b : Vec.t;
}

val create :
  Homunculus_util.Rng.t -> n_in:int -> n_out:int -> act:Activation.t -> t
(** He-style initialization scaled by fan-in; biases start at zero. *)

val n_in : t -> int
val n_out : t -> int
val param_count : t -> int

val forward : t -> Vec.t -> Vec.t * Vec.t
(** [forward layer x] is [(z, a)]: pre-activation and activation. *)

val backward :
  t -> x:Vec.t -> z:Vec.t -> a:Vec.t -> upstream:Vec.t -> Vec.t
(** Accumulate parameter gradients for one sample and return dL/dx for the
    layer below. [upstream] is dL/da. *)

val zero_grads : t -> unit
val scale_grads : t -> float -> unit
(** Divide accumulated gradients, e.g. by the batch size. *)

val copy : t -> t
(** Deep copy (fresh parameter and gradient buffers). *)
