(** Classification and clustering quality metrics.

    The paper's objective metrics are the F1 score (Tables 2, Fig. 4) and the
    V-measure for clustering on match-action tables (Fig. 7). *)

val confusion :
  n_classes:int -> pred:int array -> truth:int array -> int array array
(** [m.(truth).(pred)] counts. @raise Invalid_argument on length mismatch or
    out-of-range labels. *)

val accuracy : pred:int array -> truth:int array -> float

val precision : ?positive:int -> pred:int array -> truth:int array -> unit -> float
(** Binary precision for the given positive class (default [1]); [0.] when no
    positive predictions exist. *)

val recall : ?positive:int -> pred:int array -> truth:int array -> unit -> float
val f1 : ?positive:int -> pred:int array -> truth:int array -> unit -> float
(** Harmonic mean of precision and recall; [0.] when both are zero. *)

val macro_f1 : n_classes:int -> pred:int array -> truth:int array -> float
(** Unweighted mean of per-class F1 scores. *)

val homogeneity : pred:int array -> truth:int array -> float
(** Clustering homogeneity in [0, 1]: 1 when each cluster contains members of
    a single class. *)

val completeness : pred:int array -> truth:int array -> float
(** 1 when all members of a class land in the same cluster. *)

val v_measure : ?beta:float -> pred:int array -> truth:int array -> unit -> float
(** Weighted harmonic mean of homogeneity and completeness
    (Rosenberg & Hirschberg 2007); default [beta = 1.]. *)

val f1_percent : ?positive:int -> pred:int array -> truth:int array -> unit -> float
(** [100 *. f1], matching how the paper reports scores (e.g. 83.10). *)
