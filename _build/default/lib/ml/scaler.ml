type t = { mu : float array; sigma : float array }

let fit x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Scaler.fit: empty input";
  let d = Array.length x.(0) in
  let mu = Array.make d 0. in
  Array.iter (fun row -> Array.iteri (fun j v -> mu.(j) <- mu.(j) +. v) row) x;
  for j = 0 to d - 1 do
    mu.(j) <- mu.(j) /. float_of_int n
  done;
  let var = Array.make d 0. in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v ->
          let delta = v -. mu.(j) in
          var.(j) <- var.(j) +. (delta *. delta))
        row)
    x;
  let sigma =
    Array.map
      (fun s ->
        let sd = sqrt (s /. float_of_int n) in
        if sd < 1e-12 then 1. else sd)
      var
  in
  { mu; sigma }

let transform_row t row =
  Array.mapi (fun j v -> (v -. t.mu.(j)) /. t.sigma.(j)) row

let inverse_transform_row t row =
  Array.mapi (fun j v -> (v *. t.sigma.(j)) +. t.mu.(j)) row

let transform t x = Array.map (transform_row t) x

let apply_dataset t (d : Dataset.t) = { d with Dataset.x = transform t d.Dataset.x }

let fit_dataset (d : Dataset.t) =
  let t = fit d.Dataset.x in
  (t, apply_dataset t d)

let mean t = Array.copy t.mu
let stddev t = Array.copy t.sigma
