module Rng = Homunculus_util.Rng

type config = {
  epochs : int;
  batch_size : int;
  optimizer : Optimizer.algo;
  patience : int option;
  shuffle_each_epoch : bool;
  lr_decay_per_epoch : float;
}

let default_config =
  {
    epochs = 30;
    batch_size = 32;
    optimizer = Optimizer.adam ~lr:1e-3 ();
    patience = Some 5;
    shuffle_each_epoch = true;
    lr_decay_per_epoch = 1.;
  }

type history = {
  train_loss : float array;
  val_metric : float array;
  epochs_run : int;
}

let evaluate_f1 model (d : Dataset.t) =
  let pred = Mlp.predict_all model d.Dataset.x in
  if d.Dataset.n_classes = 2 then Metrics.f1 ~pred ~truth:d.Dataset.y ()
  else Metrics.macro_f1 ~n_classes:d.Dataset.n_classes ~pred ~truth:d.Dataset.y

let evaluate_accuracy model (d : Dataset.t) =
  let pred = Mlp.predict_all model d.Dataset.x in
  Metrics.accuracy ~pred ~truth:d.Dataset.y

let fit rng model config ?validation (train : Dataset.t) =
  if config.epochs <= 0 then invalid_arg "Train.fit: epochs <= 0";
  if config.batch_size <= 0 then invalid_arg "Train.fit: batch_size <= 0";
  let n = Dataset.n_samples train in
  if n = 0 then invalid_arg "Train.fit: empty training set";
  let params = Mlp.parameter_buffers model in
  let grads = Mlp.gradient_buffers model in
  let sizes = Array.map Array.length params in
  let opt = Optimizer.create config.optimizer sizes in
  let targets =
    Array.map (Dataset.one_hot ~n_classes:train.Dataset.n_classes) train.Dataset.y
  in
  let order = Array.init n (fun i -> i) in
  let train_losses = ref [] in
  let val_metrics = ref [] in
  let best_val = ref neg_infinity in
  let best_params = ref None in
  let stale = ref 0 in
  let epochs_run = ref 0 in
  (try
     for _epoch = 1 to config.epochs do
       incr epochs_run;
       if config.shuffle_each_epoch then Rng.shuffle_in_place rng order;
       let epoch_loss = ref 0. in
       let pos = ref 0 in
       while !pos < n do
         let batch_end = min n (!pos + config.batch_size) in
         let batch_n = batch_end - !pos in
         Mlp.zero_grads model;
         for k = !pos to batch_end - 1 do
           let i = order.(k) in
           epoch_loss :=
             !epoch_loss
             +. Mlp.train_sample model ~x:train.Dataset.x.(i) ~target:targets.(i)
         done;
         Mlp.scale_grads model (1. /. float_of_int batch_n);
         Optimizer.step opt ~params ~grads;
         pos := batch_end
       done;
       train_losses := (!epoch_loss /. float_of_int n) :: !train_losses;
       if config.lr_decay_per_epoch <> 1. then
         Optimizer.set_learning_rate opt
           (Optimizer.current_learning_rate opt *. config.lr_decay_per_epoch);
       match validation with
       | None -> ()
       | Some v ->
           let metric = evaluate_f1 model v in
           val_metrics := metric :: !val_metrics;
           if metric > !best_val then begin
             best_val := metric;
             best_params := Some (Array.map Array.copy params);
             stale := 0
           end
           else begin
             incr stale;
             match config.patience with
             | Some p when !stale >= p -> raise Exit
             | Some _ | None -> ()
           end
     done
   with Exit -> ());
  (* Restore the best validation checkpoint, if we tracked one. *)
  (match !best_params with
  | Some saved ->
      Array.iteri
        (fun b src -> Array.blit src 0 params.(b) 0 (Array.length src))
        saved
  | None -> ());
  {
    train_loss = Array.of_list (List.rev !train_losses);
    val_metric = Array.of_list (List.rev !val_metrics);
    epochs_run = !epochs_run;
  }
