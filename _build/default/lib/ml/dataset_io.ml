let to_csv (d : Dataset.t) =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf ',')
    d.Dataset.feature_names;
  Buffer.add_string buf "label\n";
  Array.iteri
    (fun i row ->
      Array.iter
        (fun v ->
          Buffer.add_string buf (Printf.sprintf "%.17g" v);
          Buffer.add_char buf ',')
        row;
      Buffer.add_string buf (string_of_int d.Dataset.y.(i));
      Buffer.add_char buf '\n')
    d.Dataset.x;
  Buffer.contents buf

let split_line line = String.split_on_char ',' line |> List.map String.trim

let fail_at line_no fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Dataset_io: line %d: %s" line_no msg))
    fmt

let of_csv ?(label_column = "label") text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> invalid_arg "Dataset_io: empty document"
  | header :: rows ->
      let columns = split_line header in
      let n_columns = List.length columns in
      let label_index =
        let rec find i = function
          | [] -> invalid_arg ("Dataset_io: no column named " ^ label_column)
          | c :: _ when String.equal c label_column -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 columns
      in
      let feature_names =
        columns
        |> List.filteri (fun i _ -> i <> label_index)
        |> Array.of_list
      in
      let parse_row line_no line =
        let cells = split_line line in
        if List.length cells <> n_columns then
          fail_at line_no "expected %d columns, found %d" n_columns
            (List.length cells);
        let label = ref None in
        let features = ref [] in
        List.iteri
          (fun i cell ->
            if i = label_index then begin
              match int_of_string_opt cell with
              | Some v when v >= 0 -> label := Some v
              | Some _ -> fail_at line_no "negative label %s" cell
              | None -> fail_at line_no "label %S is not an integer" cell
            end
            else
              match float_of_string_opt cell with
              | Some v -> features := v :: !features
              | None -> fail_at line_no "cell %S is not numeric" cell)
          cells;
        (Array.of_list (List.rev !features), Option.get !label)
      in
      let parsed = List.mapi (fun i line -> parse_row (i + 2) line) rows in
      if parsed = [] then invalid_arg "Dataset_io: no data rows";
      let x = Array.of_list (List.map fst parsed) in
      let y = Array.of_list (List.map snd parsed) in
      let n_classes = 1 + Array.fold_left Stdlib.max 0 y in
      Dataset.create ~feature_names ~x ~y ~n_classes ()

let save ~path d =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_csv d))

let load ?label_column path =
  of_csv ?label_column (In_channel.with_open_text path In_channel.input_all)
