(** Element-wise activation functions for dense layers. *)

type t = Relu | Sigmoid | Tanh | Linear

val apply : t -> float -> float

val derivative : t -> z:float -> a:float -> float
(** Derivative with respect to the pre-activation [z], given both [z] and the
    already-computed activation [a] (avoids recomputing exp for sigmoid and
    tanh). *)

val apply_vec : t -> float array -> float array
val name : t -> string
val of_name : string -> t
(** @raise Invalid_argument on unknown names. *)

val all : t array
