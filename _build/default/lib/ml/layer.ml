open Homunculus_tensor
module Rng = Homunculus_util.Rng

type t = {
  w : Mat.t;
  b : Vec.t;
  act : Activation.t;
  grad_w : Mat.t;
  grad_b : Vec.t;
}

let create rng ~n_in ~n_out ~act =
  let scale = sqrt (2. /. float_of_int n_in) in
  {
    w = Mat.init n_out n_in (fun _ _ -> Rng.gaussian rng ~sigma:scale ());
    b = Vec.create n_out;
    act;
    grad_w = Mat.create n_out n_in;
    grad_b = Vec.create n_out;
  }

let n_in t = t.w.Mat.cols
let n_out t = t.w.Mat.rows
let param_count t = Mat.n_elements t.w + Vec.dim t.b

let forward t x =
  let z = Mat.matvec t.w x in
  Vec.add_in_place z t.b;
  let a = Activation.apply_vec t.act z in
  (z, a)

let backward t ~x ~z ~a ~upstream =
  (* delta = dL/dz = upstream (dL/da) * act'(z). *)
  let delta =
    Array.init (Vec.dim upstream) (fun i ->
        upstream.(i) *. Activation.derivative t.act ~z:z.(i) ~a:a.(i))
  in
  Mat.outer_accum ~alpha:1. ~u:delta ~v:x ~acc:t.grad_w;
  Vec.add_in_place t.grad_b delta;
  Mat.matvec_t t.w delta

let zero_grads t =
  Array.fill t.grad_w.Mat.data 0 (Array.length t.grad_w.Mat.data) 0.;
  Vec.fill t.grad_b 0.

let scale_grads t alpha =
  let d = t.grad_w.Mat.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- d.(i) *. alpha
  done;
  for i = 0 to Vec.dim t.grad_b - 1 do
    t.grad_b.(i) <- t.grad_b.(i) *. alpha
  done

let copy t =
  {
    w = Mat.copy t.w;
    b = Vec.copy t.b;
    act = t.act;
    grad_w = Mat.copy t.grad_w;
    grad_b = Vec.copy t.grad_b;
  }
