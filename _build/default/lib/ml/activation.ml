type t = Relu | Sigmoid | Tanh | Linear

let apply t x =
  match t with
  | Relu -> if x > 0. then x else 0.
  | Sigmoid -> Homunculus_util.Mathx.sigmoid x
  | Tanh -> tanh x
  | Linear -> x

let derivative t ~z ~a =
  match t with
  | Relu -> if z > 0. then 1. else 0.
  | Sigmoid -> a *. (1. -. a)
  | Tanh -> 1. -. (a *. a)
  | Linear -> 1.

let apply_vec t v = Array.map (apply t) v

let name = function
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Linear -> "linear"

let of_name = function
  | "relu" -> Relu
  | "sigmoid" -> Sigmoid
  | "tanh" -> Tanh
  | "linear" -> Linear
  | other -> invalid_arg ("Activation.of_name: unknown activation " ^ other)

let all = [| Relu; Sigmoid; Tanh; Linear |]
