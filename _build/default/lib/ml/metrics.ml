module Stats = Homunculus_util.Stats

let check_lengths pred truth =
  if Array.length pred <> Array.length truth then
    invalid_arg "Metrics: pred/truth length mismatch";
  if Array.length pred = 0 then invalid_arg "Metrics: empty input"

let confusion ~n_classes ~pred ~truth =
  check_lengths pred truth;
  let m = Array.make_matrix n_classes n_classes 0 in
  Array.iteri
    (fun i t ->
      let p = pred.(i) in
      if t < 0 || t >= n_classes || p < 0 || p >= n_classes then
        invalid_arg "Metrics.confusion: label out of range";
      m.(t).(p) <- m.(t).(p) + 1)
    truth;
  m

let accuracy ~pred ~truth =
  check_lengths pred truth;
  let correct = ref 0 in
  Array.iteri (fun i p -> if p = truth.(i) then incr correct) pred;
  float_of_int !correct /. float_of_int (Array.length pred)

let binary_counts ~positive ~pred ~truth =
  check_lengths pred truth;
  let tp = ref 0 and fp = ref 0 and fn = ref 0 in
  Array.iteri
    (fun i p ->
      let t = truth.(i) in
      if p = positive && t = positive then incr tp
      else if p = positive && t <> positive then incr fp
      else if p <> positive && t = positive then incr fn)
    pred;
  (!tp, !fp, !fn)

let precision ?(positive = 1) ~pred ~truth () =
  let tp, fp, _ = binary_counts ~positive ~pred ~truth in
  if tp + fp = 0 then 0. else float_of_int tp /. float_of_int (tp + fp)

let recall ?(positive = 1) ~pred ~truth () =
  let tp, _, fn = binary_counts ~positive ~pred ~truth in
  if tp + fn = 0 then 0. else float_of_int tp /. float_of_int (tp + fn)

let f1 ?(positive = 1) ~pred ~truth () =
  let p = precision ~positive ~pred ~truth () in
  let r = recall ~positive ~pred ~truth () in
  if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r)

let macro_f1 ~n_classes ~pred ~truth =
  let acc = ref 0. in
  for c = 0 to n_classes - 1 do
    acc := !acc +. f1 ~positive:c ~pred ~truth ()
  done;
  !acc /. float_of_int n_classes

(* Entropy-based clustering metrics over the cluster/class contingency
   table. [pred] are cluster assignments, [truth] the ground-truth classes. *)
let contingency ~pred ~truth =
  check_lengths pred truth;
  let k_pred = 1 + Array.fold_left Stdlib.max 0 pred in
  let k_truth = 1 + Array.fold_left Stdlib.max 0 truth in
  let table = Array.make_matrix k_truth k_pred 0. in
  Array.iteri (fun i t -> table.(t).(pred.(i)) <- table.(t).(pred.(i)) +. 1.) truth;
  table

let class_entropy ~labels =
  let k = 1 + Array.fold_left Stdlib.max 0 labels in
  let counts = Array.make k 0. in
  Array.iter (fun l -> counts.(l) <- counts.(l) +. 1.) labels;
  Stats.entropy counts

let conditional_entropy_truth_given_pred ~pred ~truth =
  (* H(C|K) = H(C,K) - H(K). *)
  let table = contingency ~pred ~truth in
  let joint = Array.concat (Array.to_list (Array.map Array.copy table)) in
  let h_joint = Stats.entropy joint in
  let h_pred = class_entropy ~labels:pred in
  h_joint -. h_pred

let homogeneity ~pred ~truth =
  let h_c = class_entropy ~labels:truth in
  if h_c = 0. then 1.
  else 1. -. (conditional_entropy_truth_given_pred ~pred ~truth /. h_c)

let completeness ~pred ~truth = homogeneity ~pred:truth ~truth:pred

let v_measure ?(beta = 1.) ~pred ~truth () =
  let h = homogeneity ~pred ~truth in
  let c = completeness ~pred ~truth in
  if h +. c = 0. then 0.
  else (1. +. beta) *. h *. c /. ((beta *. h) +. c)

let f1_percent ?positive ~pred ~truth () = 100. *. f1 ?positive ~pred ~truth ()
