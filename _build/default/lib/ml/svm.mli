(** Linear support-vector machines trained with the Pegasos stochastic
    sub-gradient algorithm (Shalev-Shwartz et al. 2011).

    IIsy maps one match-action table per SVM feature (paper §4), so the
    Tofino backend cares about [n_features] and the weight vector layout. *)

type binary

val fit_binary :
  Homunculus_util.Rng.t ->
  ?lambda:float ->
  ?epochs:int ->
  x:float array array ->
  y:int array ->
  unit ->
  binary
(** Labels must be 0/1; internally mapped to -1/+1. Defaults:
    [lambda = 1e-4], [epochs = 20]. *)

val decision : binary -> float array -> float
(** Signed margin [w . x + b]. *)

val predict_binary : binary -> float array -> int
val weights : binary -> float array
val bias : binary -> float

type t
(** One-vs-rest multi-class wrapper (also handles the binary case). *)

val fit :
  Homunculus_util.Rng.t ->
  ?lambda:float ->
  ?epochs:int ->
  Dataset.t ->
  t

val predict : t -> float array -> int
val predict_all : t -> float array array -> int array
val n_classes : t -> int
val n_features : t -> int
val class_weights : t -> float array array
(** Per-class weight vectors, shape [n_classes x n_features]. *)

val class_biases : t -> float array
(** Per-class bias terms, length [n_classes]. *)
