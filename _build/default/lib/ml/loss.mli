(** Output losses. The MLP's final layer emits raw logits; the loss couples
    the link function (softmax) with the error so the gradient with respect to
    the logits stays numerically simple. *)

type t =
  | Softmax_cross_entropy  (** multi-class; also used for binary with 2 logits *)
  | Mse  (** regression / auxiliary heads *)

val value : t -> logits:float array -> target:float array -> float
(** [target] is one-hot for cross-entropy, raw values for MSE. *)

val gradient : t -> logits:float array -> target:float array -> float array
(** dL/dlogits. For softmax cross-entropy this is [softmax logits - target]. *)

val probabilities : t -> float array -> float array
(** Decision-time link: softmax for cross-entropy, identity for MSE. *)

val name : t -> string
