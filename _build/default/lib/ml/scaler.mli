(** Feature standardization (zero mean, unit variance per column).

    Fitted on training data only and then applied to both splits, mirroring
    standard preprocessing in a Keras/DataLoader pipeline (paper §3.1). *)

type t

val fit : float array array -> t
(** @raise Invalid_argument on empty input. Constant columns get
    [sigma = 1.] so transformation is the identity shift. *)

val transform : t -> float array array -> float array array
val transform_row : t -> float array -> float array
val inverse_transform_row : t -> float array -> float array

val fit_dataset : Dataset.t -> t * Dataset.t
(** Fit on the dataset and return it standardized. *)

val apply_dataset : t -> Dataset.t -> Dataset.t

val mean : t -> float array
val stddev : t -> float array
