(** CSV import/export for datasets.

    The paper's Alchemy example loads "train_ad.csv" through its @DataLoader
    (Fig. 3); this module provides that file format. The dialect is plain
    RFC-4180-without-quoting: comma-separated numeric columns, one header
    row naming the features, and the label in a designated column (default:
    last, named "label"). *)

val to_csv : Dataset.t -> string
(** Header row of feature names plus "label"; one row per sample. Floats
    print via [%.17g] so a round-trip is value-exact. *)

val of_csv : ?label_column:string -> string -> Dataset.t
(** Parse a document produced by {!to_csv} (or hand-written in the same
    dialect). [label_column] defaults to ["label"]; labels must be
    non-negative integers, and [n_classes] is inferred as [max label + 1].
    @raise Invalid_argument on ragged rows, missing label column,
    non-numeric cells, or fractional labels (with a line number). *)

val save : path:string -> Dataset.t -> unit
val load : ?label_column:string -> string -> Dataset.t
(** [load path] reads a CSV file. @raise Sys_error on I/O failure. *)
