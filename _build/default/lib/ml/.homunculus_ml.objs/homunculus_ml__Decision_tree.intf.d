lib/ml/decision_tree.mli: Homunculus_util
