lib/ml/metrics.mli:
