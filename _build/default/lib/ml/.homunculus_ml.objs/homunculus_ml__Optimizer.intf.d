lib/ml/optimizer.mli:
