lib/ml/train.ml: Array Dataset Homunculus_util List Metrics Mlp Optimizer
