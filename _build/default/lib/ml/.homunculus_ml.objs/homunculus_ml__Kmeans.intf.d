lib/ml/kmeans.mli: Homunculus_util
