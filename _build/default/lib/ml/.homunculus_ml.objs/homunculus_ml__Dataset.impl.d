lib/ml/dataset.ml: Array Float Homunculus_util Printf String
