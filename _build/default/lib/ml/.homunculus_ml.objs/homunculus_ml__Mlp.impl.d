lib/ml/mlp.ml: Activation Array Homunculus_tensor Layer Loss Mat Vec
