lib/ml/scaler.ml: Array Dataset
