lib/ml/layer.mli: Activation Homunculus_tensor Homunculus_util Mat Vec
