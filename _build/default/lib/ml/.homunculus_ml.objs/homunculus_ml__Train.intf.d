lib/ml/train.mli: Dataset Homunculus_util Mlp Optimizer
