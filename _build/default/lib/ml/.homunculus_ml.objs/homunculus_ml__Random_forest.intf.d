lib/ml/random_forest.mli: Decision_tree Homunculus_util
