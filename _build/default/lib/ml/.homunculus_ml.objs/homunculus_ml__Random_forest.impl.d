lib/ml/random_forest.ml: Array Decision_tree Homunculus_util Stdlib
