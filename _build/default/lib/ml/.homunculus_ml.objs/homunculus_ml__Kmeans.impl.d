lib/ml/kmeans.ml: Array Homunculus_tensor Homunculus_util Option Stdlib Vec
