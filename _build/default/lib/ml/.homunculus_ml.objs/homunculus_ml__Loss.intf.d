lib/ml/loss.mli:
