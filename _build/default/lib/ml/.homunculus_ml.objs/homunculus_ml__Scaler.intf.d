lib/ml/scaler.mli: Dataset
