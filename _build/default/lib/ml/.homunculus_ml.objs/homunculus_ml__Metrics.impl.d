lib/ml/metrics.ml: Array Homunculus_util Stdlib
