lib/ml/activation.mli:
