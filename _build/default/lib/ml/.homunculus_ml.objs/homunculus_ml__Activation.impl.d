lib/ml/activation.ml: Array Homunculus_util
