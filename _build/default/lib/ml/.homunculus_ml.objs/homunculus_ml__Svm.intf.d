lib/ml/svm.mli: Dataset Homunculus_util
