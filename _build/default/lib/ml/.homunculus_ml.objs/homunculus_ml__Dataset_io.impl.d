lib/ml/dataset_io.ml: Array Buffer Dataset In_channel List Option Out_channel Printf Stdlib String
