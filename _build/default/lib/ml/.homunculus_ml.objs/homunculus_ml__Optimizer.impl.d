lib/ml/optimizer.ml: Array
