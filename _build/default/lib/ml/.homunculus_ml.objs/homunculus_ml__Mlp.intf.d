lib/ml/mlp.mli: Activation Homunculus_tensor Homunculus_util Layer Loss Vec
