lib/ml/loss.ml: Array Homunculus_util
