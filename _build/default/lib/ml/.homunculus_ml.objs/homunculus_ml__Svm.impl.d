lib/ml/svm.ml: Array Dataset Homunculus_util
