lib/ml/layer.ml: Activation Array Homunculus_tensor Homunculus_util Mat Vec
