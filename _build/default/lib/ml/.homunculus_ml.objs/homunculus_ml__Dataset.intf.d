lib/ml/dataset.mli: Homunculus_util
