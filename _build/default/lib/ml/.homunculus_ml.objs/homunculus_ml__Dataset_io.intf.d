lib/ml/dataset_io.mli: Dataset
