lib/ml/decision_tree.ml: Array Homunculus_util List Stdlib
