let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  check_nonempty "Stats.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
  acc /. float_of_int (Array.length xs)

let std xs = sqrt (variance xs)

let min xs =
  check_nonempty "Stats.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "Stats.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let s = sorted_copy xs in
  let n = Array.length s in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then s.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1. -. w) *. s.(lo)) +. (w *. s.(hi))

let median xs = percentile xs 50.

let argmax xs =
  check_nonempty "Stats.argmax" xs;
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) > xs.(!best) then best := i
  done;
  !best

let argmin xs =
  check_nonempty "Stats.argmin" xs;
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(!best) then best := i
  done;
  !best

let normalize xs =
  let total = sum xs in
  if total <= 0. then Array.map (fun _ -> 0.) xs
  else Array.map (fun x -> x /. total) xs

let entropy weights =
  check_nonempty "Stats.entropy" weights;
  let p = normalize weights in
  Array.fold_left (fun acc pi -> if pi > 0. then acc -. (pi *. log pi) else acc) 0. p

let mutual_information table =
  let rows = Array.length table in
  if rows = 0 then invalid_arg "Stats.mutual_information: empty table";
  let cols = Array.length table.(0) in
  let total = Array.fold_left (fun a row -> a +. sum row) 0. table in
  if total <= 0. then 0.
  else begin
    let row_sum = Array.map sum table in
    let col_sum = Array.make cols 0. in
    Array.iter (fun row -> Array.iteri (fun j v -> col_sum.(j) <- col_sum.(j) +. v) row) table;
    let mi = ref 0. in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        let pij = table.(i).(j) /. total in
        if pij > 0. then begin
          let pi = row_sum.(i) /. total and pj = col_sum.(j) /. total in
          mi := !mi +. (pij *. log (pij /. (pi *. pj)))
        end
      done
    done;
    !mi
  end

let pearson xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.pearson: length mismatch";
  check_nonempty "Stats.pearson" xs;
  let mx = mean xs and my = mean ys in
  let num = ref 0. and dx = ref 0. and dy = ref 0. in
  Array.iteri
    (fun i x ->
      let a = x -. mx and b = ys.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b))
    xs;
  if !dx = 0. || !dy = 0. then 0. else !num /. sqrt (!dx *. !dy)
