(** Descriptive statistics over float arrays.

    Used throughout the evaluation harness (metric aggregation, histogram
    comparison, surrogate-model diagnostics). All functions raise
    [Invalid_argument] on empty input unless noted. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divide by [n]). *)

val std : float array -> float
val min : float array -> float
val max : float array -> float
val sum : float array -> float
(** [sum [||]] is [0.]. *)

val median : float array -> float
(** Does not mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0, 100], linear interpolation between order
    statistics. Does not mutate its argument. *)

val argmax : float array -> int
val argmin : float array -> int

val entropy : float array -> float
(** Shannon entropy (nats) of a discrete distribution given as non-negative
    weights; the weights are normalized internally. Zero-weight cells
    contribute zero. *)

val mutual_information : float array array -> float
(** Mutual information (nats) of a joint contingency table [counts.(i).(j)]. *)

val pearson : float array -> float array -> float
(** Correlation coefficient; [0.] when either side is constant. *)

val normalize : float array -> float array
(** Scale non-negative weights to sum to 1; all-zero input maps to all-zero
    output. *)
