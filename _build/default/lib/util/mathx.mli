(** Small numeric helpers shared by the ML and optimization layers. *)

val clamp : lo:float -> hi:float -> float -> float
val clamp_int : lo:int -> hi:int -> int -> int

val sigmoid : float -> float
(** Numerically stable logistic function. *)

val log_sum_exp : float array -> float
(** Stable [log (sum_i exp x_i)]; [neg_infinity] on empty input. *)

val softmax : float array -> float array
(** Stable softmax; returns a fresh array. *)

val normal_pdf : float -> float
(** Standard normal density. *)

val normal_cdf : float -> float
(** Standard normal CDF via the Abramowitz–Stegun erf approximation
    (max abs error ~1.5e-7, ample for acquisition functions). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] for positive [b]. *)

val round_to : int -> float -> float
(** [round_to digits x] rounds to the given number of decimal digits. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Absolute-difference comparison, default [eps = 1e-9]. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] is [n] evenly spaced points including both ends
    ([n >= 2]). *)
