let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let clamp_int ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let sigmoid x =
  if x >= 0. then 1. /. (1. +. exp (-.x))
  else
    let e = exp x in
    e /. (1. +. e)

let log_sum_exp xs =
  if Array.length xs = 0 then neg_infinity
  else begin
    let m = Array.fold_left Stdlib.max xs.(0) xs in
    if m = neg_infinity then neg_infinity
    else
      let acc = Array.fold_left (fun a x -> a +. exp (x -. m)) 0. xs in
      m +. log acc
  end

let softmax xs =
  let lse = log_sum_exp xs in
  Array.map (fun x -> exp (x -. lse)) xs

let normal_pdf x = exp (-0.5 *. x *. x) /. sqrt (2. *. Float.pi)

let erf_approx x =
  (* Abramowitz & Stegun 7.1.26. *)
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
       +. (t
          *. (-0.284496736
             +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1. -. (poly *. exp (-.x *. x)))

let normal_cdf x = 0.5 *. (1. +. erf_approx (x /. sqrt 2.))

let ceil_div a b =
  if b <= 0 then invalid_arg "Mathx.ceil_div: non-positive divisor";
  (a + b - 1) / b

let round_to digits x =
  let f = 10. ** float_of_int digits in
  Float.round (x *. f) /. f

let approx_equal ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let linspace lo hi n =
  if n < 2 then invalid_arg "Mathx.linspace: need at least two points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo +. (float_of_int i *. step))
