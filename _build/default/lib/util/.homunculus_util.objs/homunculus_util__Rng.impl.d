lib/util/rng.ml: Array Hashtbl Int64
