lib/util/json.mli:
