lib/util/stats.mli:
