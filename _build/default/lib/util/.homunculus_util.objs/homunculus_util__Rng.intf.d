lib/util/rng.mli:
