lib/util/mathx.mli:
