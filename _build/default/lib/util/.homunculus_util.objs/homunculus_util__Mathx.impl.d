lib/util/mathx.ml: Array Float Stdlib
