(** Fixed-capacity per-flow state on a switch.

    Flowmarkers live in register arrays; a switch has a fixed SRAM budget,
    so marker width trades directly against how many concurrent flows can be
    tracked — the paper's §5.1.2 point that shrinking the flowmarker 5x
    (151 -> 30 bins) grows flow capacity proportionally. The table is
    direct-mapped by flow hash, the eviction policy of real data-plane
    register files: a colliding new flow overwrites the old entry. *)

type key = { src : int; dst : int; src_port : int; dst_port : int; proto : int }

val key_of_ints : int -> int -> key
(** Convenience conversation-level key (src, dst only — the paper's BD
    tracking ignores ports). *)

type t

val create : sram_bytes:int -> marker_bins:int -> ?bytes_per_bin:int -> unit -> t
(** Capacity = [sram_bytes / (marker_bins * bytes_per_bin)] slots
    (default 2 bytes per bin — 16-bit counters).
    @raise Invalid_argument when no slot fits. *)

val capacity : t -> int
(** Number of flows trackable simultaneously. *)

val record : t -> key -> value:float -> bin:int -> unit
(** Add [value] to [bin] of the flow's marker, claiming (and possibly
    evicting) a slot on first touch. @raise Invalid_argument on bad bin. *)

val marker : t -> key -> float array option
(** The flow's current histogram, if it still owns its slot. *)

val active_flows : t -> int
val evictions : t -> int
(** Flows overwritten by hash collisions since creation. *)

val stress : t -> n_flows:int -> touches_per_flow:int -> float
(** Simulate [n_flows] distinct flows each touching the table
    [touches_per_flow] times (round-robin), then report the fraction of
    flows whose marker survived intact — the effective tracking ratio at
    that offered concurrency. *)
