(** Peer-to-peer traffic simulator standing in for the PeerRush traces used
    by the botnet-detection application (paper §5, Flowlens/PeerRush).

    Botnet command-and-control traffic (Storm, Waledac) is low-volume and
    long-duration with small, regular packets and large inter-arrival gaps;
    benign P2P file sharing (uTorrent, Vuze, eMule, Frostwire) is bursty,
    with heavy-tailed packet sizes up to the MTU and sub-second gaps. These
    contrasts are what make partial per-packet histograms separable early
    (Fig. 6). *)

val botnet_apps : string array
(** ["storm"; "waledac"]. *)

val benign_apps : string array
(** ["utorrent"; "vuze"; "emule"; "frostwire"]. *)

val generate_flow :
  Homunculus_util.Rng.t -> id:int -> app:string -> ?max_packets:int -> unit -> Flow.t
(** Synthesize one flow from the named application's profile (default packet
    cap 400). @raise Invalid_argument for unknown applications. *)

type mix = {
  n_flows : int;
  botnet_frac : float;
  max_packets : int;  (** per-flow cap, keeps memory bounded *)
}

val default_mix : mix
(** 400 flows, half botnet, <=400 packets each. *)

val generate : Homunculus_util.Rng.t -> ?mix:mix -> unit -> Flow.t array
(** A shuffled population of flows drawn from all six applications. *)

val average_flowmarker :
  Flow.t array ->
  label:Flow.label ->
  pl_spec:Histogram.spec ->
  ipt_spec:Histogram.spec ->
  float array * float array
(** Mean normalized (packet-length, inter-arrival) histograms across all
    flows of one class — the two panels of Fig. 6. *)
