(** Minimal packet record for the flow-level traffic simulator. *)

type t = {
  ts : float;  (** arrival time in seconds since flow start *)
  size : int;  (** bytes on the wire *)
}

val make : ts:float -> size:int -> t
(** @raise Invalid_argument on negative time or non-positive size. *)

val inter_arrival_times : t array -> float array
(** [n-1] gaps of an array sorted by [ts]; empty for fewer than 2 packets. *)

val total_bytes : t array -> int
val duration : t array -> float
(** Last minus first timestamp; [0.] for fewer than 2 packets. *)
