(** Fixed-width histograms — the "flowmarkers" of FlowLens (paper §5.1.1).

    The paper bins packet lengths at 64 bytes and inter-arrival times at
    512 seconds, then fuses adjacent bins to shrink the feature vector from
    151 to 30 entries. Values beyond the last bin edge are clamped into the
    final bin. *)

type spec = { n_bins : int; bin_width : float }

val spec : n_bins:int -> bin_width:float -> spec
(** @raise Invalid_argument on non-positive arguments. *)

type t

val create : spec -> t
val spec_of : t -> spec

val add : t -> float -> unit
(** Clamp negative values into bin 0 and overflow into the last bin. *)

val add_all : t -> float array -> unit
val count : t -> float
(** Total mass added so far. *)

val counts : t -> float array
(** Fresh copy of the raw per-bin counts. *)

val normalized : t -> float array
(** Counts scaled to sum to 1; all zeros when empty. *)

val reset : t -> unit
val copy : t -> t

val fuse : t -> factor:int -> t
(** Merge every [factor] adjacent bins (last group may be smaller), the
    paper's trick for reducing flowmarker size 5x. @raise Invalid_argument if
    [factor <= 0]. *)

val fuse_to : t -> target_bins:int -> t
(** Fuse with the smallest factor giving at most [target_bins] bins. *)
