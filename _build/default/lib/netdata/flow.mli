(** A network flow: an ordered packet train with a class label. *)

type label = Benign | Botnet

val label_to_int : label -> int
(** [Benign -> 0], [Botnet -> 1]. *)

val label_to_string : label -> string

type t = {
  id : int;
  label : label;
  app : string;  (** generating application, e.g. "storm" or "utorrent" *)
  packets : Packet.t array;  (** sorted by timestamp *)
}

val make : id:int -> label:label -> app:string -> packets:Packet.t array -> t
(** Sorts the packets by timestamp. @raise Invalid_argument on empty
    trains. *)

val n_packets : t -> int
val duration : t -> float
val total_bytes : t -> int
val mean_packet_size : t -> float
val mean_inter_arrival : t -> float
(** [0.] for single-packet flows. *)

val flowmarker :
  t ->
  pl_spec:Histogram.spec ->
  ipt_spec:Histogram.spec ->
  ?first_packets:int ->
  unit ->
  float array
(** FlowLens-style feature vector: the normalized packet-length histogram
    concatenated with the normalized inter-arrival-time histogram. With
    [first_packets = k], only the first [k] packets contribute — the paper's
    per-packet *partial* flowmarker (§5.1.1). *)
