module Rng = Homunculus_util.Rng

let botnet_apps = [| "storm"; "waledac" |]
let benign_apps = [| "utorrent"; "vuze"; "emule"; "frostwire" |]

type profile = {
  label : Flow.label;
  n_packets : Rng.t -> int;
  packet_size : Rng.t -> int;
  inter_arrival : Rng.t -> float;
}

let clamp_size s = Homunculus_util.Mathx.clamp_int ~lo:40 ~hi:1500 s

(* Botnet C&C: mostly small keepalives with occasional command messages and
   rare payload bursts, and long, fairly regular gaps between packets. *)
let botnet_profile ~keepalive ~command ~gap_mu ~gap_sigma =
  {
    label = Flow.Botnet;
    n_packets = (fun rng -> 20 + Rng.int rng 120);
    packet_size =
      (fun rng ->
        let roll = Rng.float rng 1.0 in
        if roll < 0.80 then
          clamp_size (int_of_float (Rng.gaussian rng ~mu:keepalive ~sigma:25. ()))
        else if roll < 0.95 then
          clamp_size (int_of_float (Rng.gaussian rng ~mu:command ~sigma:80. ()))
        else (* occasional update payload: benign-looking near-MTU data *)
          clamp_size (1460 - Rng.int rng 300));
    inter_arrival =
      (fun rng ->
        if Rng.bernoulli rng 0.15 then Rng.exponential rng 5.
          (* short command bursts resembling benign pacing *)
        else Rng.lognormal rng ~mu:gap_mu ~sigma:gap_sigma);
  }

(* Benign P2P: bimodal sizes (MTU-sized data + small control), bursty
   sub-second gaps with an occasional idle period. *)
let benign_profile ~data_frac ~control ~burst_rate ~idle_p =
  {
    label = Flow.Benign;
    n_packets = (fun rng -> 80 + Rng.int rng 320);
    packet_size =
      (fun rng ->
        if Rng.bernoulli rng data_frac then
          clamp_size (1460 - Rng.int rng 200)
        else
          clamp_size (int_of_float (Rng.pareto rng ~xm:control ~alpha:1.8)));
    inter_arrival =
      (fun rng ->
        if Rng.bernoulli rng idle_p then 30. +. Rng.exponential rng 0.01
        else Rng.exponential rng burst_rate);
  }

(* Benign P2P chatter (DHT lookups, keepalives): small packets at C&C-like
   pacing — the confuser class that keeps partial-histogram detection from
   being trivial. *)
let benign_chatter_profile ~control ~gap_mu =
  {
    label = Flow.Benign;
    n_packets = (fun rng -> 15 + Rng.int rng 100);
    packet_size =
      (fun rng ->
        if Rng.bernoulli rng 0.9 then
          clamp_size (int_of_float (Rng.gaussian rng ~mu:control ~sigma:40. ()))
        else clamp_size (1460 - Rng.int rng 400));
    inter_arrival =
      (fun rng ->
        if Rng.bernoulli rng 0.5 then Rng.exponential rng 1.
        else Rng.lognormal rng ~mu:gap_mu ~sigma:1.0);
  }

let profile_of_app = function
  | "storm" -> botnet_profile ~keepalive:110. ~command:350. ~gap_mu:3.4 ~gap_sigma:0.9
  | "waledac" -> botnet_profile ~keepalive:170. ~command:500. ~gap_mu:3.9 ~gap_sigma:0.7
  | "utorrent" -> benign_profile ~data_frac:0.6 ~control:64. ~burst_rate:20. ~idle_p:0.02
  | "vuze" -> benign_profile ~data_frac:0.55 ~control:80. ~burst_rate:12. ~idle_p:0.03
  | "emule" ->
      (* eMule spends long stretches in low-rate source exchanges. *)
      benign_chatter_profile ~control:130. ~gap_mu:2.6
  | "frostwire" -> benign_profile ~data_frac:0.5 ~control:96. ~burst_rate:9. ~idle_p:0.04
  | app -> invalid_arg ("Flowsim.profile_of_app: unknown application " ^ app)

let generate_flow rng ~id ~app ?(max_packets = 400) () =
  let p = profile_of_app app in
  let n = Stdlib.min max_packets (Stdlib.max 2 (p.n_packets rng)) in
  let ts = ref 0. in
  let packets =
    Array.init n (fun i ->
        if i > 0 then ts := !ts +. p.inter_arrival rng;
        Packet.make ~ts:!ts ~size:(p.packet_size rng))
  in
  Flow.make ~id ~label:p.label ~app ~packets

type mix = { n_flows : int; botnet_frac : float; max_packets : int }

let default_mix = { n_flows = 400; botnet_frac = 0.5; max_packets = 400 }

let generate rng ?(mix = default_mix) () =
  if mix.n_flows <= 0 then invalid_arg "Flowsim.generate: n_flows <= 0";
  if mix.botnet_frac < 0. || mix.botnet_frac > 1. then
    invalid_arg "Flowsim.generate: botnet_frac outside [0,1]";
  let flows =
    Array.init mix.n_flows (fun id ->
        let app =
          if Rng.bernoulli rng mix.botnet_frac then Rng.choice rng botnet_apps
          else Rng.choice rng benign_apps
        in
        generate_flow rng ~id ~app ~max_packets:mix.max_packets ())
  in
  Rng.shuffle_in_place rng flows;
  flows

let average_flowmarker flows ~label ~pl_spec ~ipt_spec =
  let selected = Array.to_list flows |> List.filter (fun f -> f.Flow.label = label) in
  if selected = [] then invalid_arg "Flowsim.average_flowmarker: no flows of that label";
  let pl_acc = Array.make pl_spec.Histogram.n_bins 0. in
  let ipt_acc = Array.make ipt_spec.Histogram.n_bins 0. in
  List.iter
    (fun f ->
      let fm = Flow.flowmarker f ~pl_spec ~ipt_spec () in
      Array.iteri
        (fun i v ->
          if i < pl_spec.Histogram.n_bins then pl_acc.(i) <- pl_acc.(i) +. v
          else
            let j = i - pl_spec.Histogram.n_bins in
            ipt_acc.(j) <- ipt_acc.(j) +. v)
        fm)
    selected;
  let n = float_of_int (List.length selected) in
  (Array.map (fun v -> v /. n) pl_acc, Array.map (fun v -> v /. n) ipt_acc)
