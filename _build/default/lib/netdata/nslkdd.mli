(** Synthetic NSL-KDD-like intrusion-detection data (paper's AD application).

    Seven packet-level features mirroring the NSL-KDD schema the Taurus
    anomaly-detection case study trains on (§3, §5): connection duration,
    source/destination byte volumes (log-scaled), protocol code, per-host
    connection count, per-service connection count, and SYN-error rate.
    Malicious traffic is a mixture of four attack families (DoS, probe, R2L,
    U2R) whose clusters interleave with the benign modes non-linearly, so
    model capacity and tuning visibly move the F1 score. Labels: 0 = benign,
    1 = malicious. *)

val feature_names : string array
(** Length 7. *)

val generate :
  Homunculus_util.Rng.t ->
  ?n:int ->
  ?attack_frac:float ->
  ?label_noise:float ->
  unit ->
  Homunculus_ml.Dataset.t
(** Defaults: [n = 4000], [attack_frac = 0.45], [label_noise = 0.05]. *)

val generate_split :
  Homunculus_util.Rng.t ->
  ?n_train:int ->
  ?n_test:int ->
  unit ->
  Homunculus_ml.Dataset.t * Homunculus_ml.Dataset.t
(** Independent draws for train (default 4000) and test (default 1500). *)
