(** Synthetic IoT traffic-classification data (the paper's TC application,
    after IIsy's IoT device traces).

    Five device classes are identified from packet-header features only
    (frame size, protocol, TTL, port buckets, inter-arrival, payload
    entropy). The class clusters overlap — camera vs. smart-TV and sensor
    vs. plug are near neighbors — so both DNN capacity (Table 2) and cluster
    granularity on MATs (Fig. 7) visibly trade off against accuracy. *)

val feature_names : string array
(** Length 7. *)

val class_names : string array
(** [camera; sensor; plug; hub; tv] — 5 classes as in IIsy. *)

val n_classes : int

val generate :
  Homunculus_util.Rng.t -> ?n:int -> unit -> Homunculus_ml.Dataset.t
(** Balanced draw across classes; default [n = 4000]. *)

val generate_split :
  Homunculus_util.Rng.t ->
  ?n_train:int ->
  ?n_test:int ->
  unit ->
  Homunculus_ml.Dataset.t * Homunculus_ml.Dataset.t
