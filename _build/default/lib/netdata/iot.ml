module Rng = Homunculus_util.Rng
module Mathx = Homunculus_util.Mathx
module Dataset = Homunculus_ml.Dataset

let feature_names =
  [|
    "frame_size"; "ip_proto"; "ttl"; "src_port_bucket"; "dst_port_bucket";
    "inter_arrival_ms"; "payload_entropy";
  |]

let class_names = [| "camera"; "sensor"; "plug"; "hub"; "tv" |]
let n_classes = Array.length class_names

let gauss rng mu sigma = Rng.gaussian rng ~mu ~sigma ()
let size rng mu sigma = Mathx.clamp ~lo:40. ~hi:1500. (gauss rng mu sigma)
let entropy rng mu sigma = Mathx.clamp ~lo:0. ~hi:8. (gauss rng mu sigma)
let bucket rng center spread max_b =
  Mathx.clamp ~lo:0. ~hi:max_b (Float.round (gauss rng center spread))

(* Per-class generators. Protocol: 0 = TCP, 1 = UDP, chosen per-class with
   characteristic probability so the marginal overlaps. *)
let sample_class rng cls =
  match class_names.(cls) with
  | "camera" ->
      (* RTSP/RTP video: near-MTU UDP frames, steady ~30 fps pacing. *)
      [| size rng 1300. 160.; (if Rng.bernoulli rng 0.7 then 1. else 0.);
         gauss rng 62. 6.; bucket rng 9. 2. 15.; bucket rng 11. 1.5 15.;
         Stdlib.max 0.1 (gauss rng 30. 12.); entropy rng 7.2 0.5 |]
  | "sensor" ->
      (* MQTT telemetry: tiny TCP messages, minutes apart. *)
      [| size rng 95. 30.; (if Rng.bernoulli rng 0.8 then 0. else 1.);
         gauss rng 255. 3.; bucket rng 4. 2. 15.; bucket rng 3. 1.5 15.;
         Stdlib.max 1. (gauss rng 28000. 10000.); entropy rng 3.8 0.9 |]
  | "plug" ->
      (* Smart plug heartbeats: tiny periodic UDP, the sensor's shadow —
         separated mostly by protocol mix and pacing. *)
      [| size rng 115. 32.; (if Rng.bernoulli rng 0.6 then 1. else 0.);
         gauss rng 252. 5.; bucket rng 5. 2. 15.; bucket rng 3. 1.5 15.;
         Stdlib.max 1. (gauss rng 21000. 8000.); entropy rng 3.4 0.9 |]
  | "hub" ->
      (* Home hub: mixed mid-size TCP, moderate pacing; bleeds into all. *)
      [| size rng 500. 260.; (if Rng.bernoulli rng 0.6 then 0. else 1.);
         gauss rng 64. 12.; bucket rng 7. 2.5 15.; bucket rng 7. 2.5 15.;
         Stdlib.max 0.5 (gauss rng 800. 450.); entropy rng 5.5 1.1 |]
  | "tv" ->
      (* Streaming TV: large TCP segments, bursty; camera's near neighbor. *)
      [| size rng 1390. 110.; (if Rng.bernoulli rng 0.65 then 0. else 1.);
         gauss rng 60. 7.; bucket rng 10. 2. 15.; bucket rng 12. 1.5 15.;
         Stdlib.max 0.05 (gauss rng 18. 9.); entropy rng 7.5 0.4 |]
  | _ -> assert false

let generate rng ?(n = 4000) () =
  if n <= 0 then invalid_arg "Iot.generate: n <= 0";
  let x = Array.make n [||] in
  let y = Array.make n 0 in
  for i = 0 to n - 1 do
    let cls = Rng.int rng n_classes in
    x.(i) <- sample_class rng cls;
    y.(i) <- cls
  done;
  Dataset.create ~feature_names ~x ~y ~n_classes ()

let generate_split rng ?(n_train = 4000) ?(n_test = 1500) () =
  (generate rng ~n:n_train (), generate rng ~n:n_test ())
