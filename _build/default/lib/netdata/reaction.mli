(** Reaction-time analysis for per-packet detection (paper §5.1.1).

    FlowLens-style detection waits up to 3,600 s for a full flowmarker; a
    per-packet model can flag a botnet flow a handful of packets in. This
    module quantifies that claim for any per-packet classifier: the
    detection-quality curve as a function of packets seen, and per-flow
    reaction times (packets and seconds until the verdict fires). *)

type curve_point = {
  packets_seen : int;
  f1 : float;  (** over all flows with at least that many packets *)
  n_flows : int;
}

val detection_curve :
  classify:(float array -> int) ->
  bins:Botnet.bins ->
  prefix_lengths:int list ->
  Flow.t array ->
  curve_point list
(** Evaluate the classifier on partial flowmarkers of each given prefix
    length. Prefixes longer than a flow are skipped for that flow. *)

type reaction = {
  flow_id : int;
  packets_to_verdict : int option;  (** None: never flagged *)
  seconds_to_verdict : float option;
      (** timestamp of the packet that triggered the (confirmed) verdict *)
}

val reaction_times :
  classify:(float array -> int) ->
  bins:Botnet.bins ->
  ?confirm:int ->
  Flow.t array ->
  reaction list
(** For every botnet flow, the first packet index at which the classifier
    reports "botnet" for [confirm] consecutive packets (default 2 — a real
    deployment debounces). Evaluates the partial flowmarker after every
    packet from 2 up to the flow length. *)

type summary = {
  n_flows : int;
  detected : int;
  detection_rate : float;
  mean_packets : float;  (** over detected flows; 0 when none *)
  median_seconds : float;
  p95_seconds : float;
}

val summarize : reaction list -> summary
(** @raise Invalid_argument on empty input. *)

val pp_summary : Format.formatter -> summary -> unit
