module Mathx = Homunculus_util.Mathx

type spec = { n_bins : int; bin_width : float }

let spec ~n_bins ~bin_width =
  if n_bins <= 0 then invalid_arg "Histogram.spec: n_bins <= 0";
  if bin_width <= 0. then invalid_arg "Histogram.spec: bin_width <= 0";
  { n_bins; bin_width }

type t = { s : spec; data : float array; mutable total : float }

let create s = { s; data = Array.make s.n_bins 0.; total = 0. }
let spec_of t = t.s

let add t v =
  let bin =
    Mathx.clamp_int ~lo:0 ~hi:(t.s.n_bins - 1)
      (int_of_float (Float.floor (v /. t.s.bin_width)))
  in
  t.data.(bin) <- t.data.(bin) +. 1.;
  t.total <- t.total +. 1.

let add_all t vs = Array.iter (add t) vs

let count t = t.total
let counts t = Array.copy t.data

let normalized t = Homunculus_util.Stats.normalize t.data

let reset t =
  Array.fill t.data 0 t.s.n_bins 0.;
  t.total <- 0.

let copy t = { s = t.s; data = Array.copy t.data; total = t.total }

let fuse t ~factor =
  if factor <= 0 then invalid_arg "Histogram.fuse: factor <= 0";
  let n_bins = Mathx.ceil_div t.s.n_bins factor in
  let fused =
    create { n_bins; bin_width = t.s.bin_width *. float_of_int factor }
  in
  Array.iteri
    (fun i c ->
      let j = i / factor in
      fused.data.(j) <- fused.data.(j) +. c)
    t.data;
  fused.total <- t.total;
  fused

let fuse_to t ~target_bins =
  if target_bins <= 0 then invalid_arg "Histogram.fuse_to: target_bins <= 0";
  let factor = Mathx.ceil_div t.s.n_bins target_bins in
  fuse t ~factor
