module Rng = Homunculus_util.Rng
module Mathx = Homunculus_util.Mathx
module Dataset = Homunculus_ml.Dataset

let feature_names =
  [|
    "duration"; "log_src_bytes"; "log_dst_bytes"; "protocol"; "host_count";
    "srv_count"; "serror_rate";
  |]

(* Each mixture component fills the 7 features. Benign and attack modes are
   deliberately interleaved: the "stealth" attack components coincide with a
   benign mode on most marginals and differ only through interactions, which
   is what rewards larger, better-tuned networks. *)

let gauss rng mu sigma = Rng.gaussian rng ~mu ~sigma ()
let rate rng mu sigma = Mathx.clamp ~lo:0. ~hi:1. (gauss rng mu sigma)
let pos rng mu sigma = Stdlib.max 0. (gauss rng mu sigma)

let benign_components =
  [|
    (* Interactive sessions: short, light, clean. *)
    ( 0.4,
      fun rng ->
        [| pos rng 4. 2.; gauss rng 6. 1.2; gauss rng 7. 1.5; 0.;
           pos rng 8. 4.; pos rng 6. 3.; rate rng 0.02 0.02 |] );
    (* Bulk transfer: long, heavy, clean; overlaps R2L in volume. *)
    ( 0.3,
      fun rng ->
        [| pos rng 120. 40.; gauss rng 10.5 1.; gauss rng 12. 1.2; 0.;
           pos rng 4. 2.; pos rng 3. 2.; rate rng 0.03 0.03 |] );
    (* UDP telemetry: frequent tiny messages; overlaps probe in count. *)
    ( 0.2,
      fun rng ->
        [| pos rng 1. 0.6; gauss rng 4.5 0.8; gauss rng 4.2 0.8; 1.;
           pos rng 55. 12.; pos rng 40. 10.; rate rng 0.05 0.04 |] );
    (* Admin shells: long idle durations; the U2R lookalike. *)
    ( 0.1,
      fun rng ->
        [| pos rng 300. 90.; gauss rng 7.5 1.; gauss rng 8.5 1.2; 0.;
           pos rng 2. 1.; pos rng 2. 1.; rate rng 0.02 0.02 |] );
  |]

let attack_components =
  [|
    (* DoS flood: elevated connection counts and SYN errors, tiny payloads;
       broad spread overlaps the telemetry mode heavily. *)
    ( 0.45,
      fun rng ->
        [| pos rng 0.8 0.7; gauss rng 4.0 1.1; gauss rng 2.8 1.6; 0.;
           pos rng 85. 40.; pos rng 70. 35.; rate rng 0.55 0.3 |] );
    (* Port probe: telemetry counts, distinguished mostly by the error rate
       interaction with protocol. *)
    ( 0.25,
      fun rng ->
        [| pos rng 1.2 0.8; gauss rng 4.4 0.8; gauss rng 3.0 1.4; 1.;
           pos rng 58. 16.; pos rng 50. 15.; rate rng 0.22 0.12 |] );
    (* R2L: looks like bulk transfer except the byte ratio inverts
       (uploads exceed downloads) and errors creep up. *)
    ( 0.2,
      fun rng ->
        [| pos rng 115. 40.; gauss rng 11.4 1.2; gauss rng 10.4 1.3; 0.;
           pos rng 4.5 2.2; pos rng 3.5 2.; rate rng 0.08 0.05 |] );
    (* U2R: admin-shell lookalike; only the srv_count interaction and a
       slightly raised error rate give it away. *)
    ( 0.1,
      fun rng ->
        [| pos rng 290. 85.; gauss rng 7.6 1.; gauss rng 8.3 1.2; 0.;
           pos rng 2.3 1.2; pos rng 5.5 2.5; rate rng 0.07 0.04 |] );
  |]

let sample_mixture rng components =
  let pick = Rng.choice_weighted rng (Array.map (fun (w, f) -> (f, w)) components) in
  pick rng

let generate rng ?(n = 4000) ?(attack_frac = 0.45) ?(label_noise = 0.05) () =
  if n <= 0 then invalid_arg "Nslkdd.generate: n <= 0";
  if attack_frac <= 0. || attack_frac >= 1. then
    invalid_arg "Nslkdd.generate: attack_frac outside (0,1)";
  let x = Array.make n [||] in
  let y = Array.make n 0 in
  for i = 0 to n - 1 do
    let is_attack = Rng.bernoulli rng attack_frac in
    let components = if is_attack then attack_components else benign_components in
    x.(i) <- sample_mixture rng components;
    let label = if is_attack then 1 else 0 in
    y.(i) <- (if Rng.bernoulli rng label_noise then 1 - label else label)
  done;
  Dataset.create ~feature_names ~x ~y ~n_classes:2 ()

let generate_split rng ?(n_train = 4000) ?(n_test = 1500) () =
  let train = generate rng ~n:n_train () in
  let test = generate rng ~n:n_test () in
  (train, test)
