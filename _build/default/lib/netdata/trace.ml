let header = "# homunculus-trace v1"

let to_string flows =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun f ->
      Printf.bprintf buf "flow %d %s %s %d\n" f.Flow.id
        (Flow.label_to_string f.Flow.label)
        f.Flow.app (Flow.n_packets f);
      Array.iter
        (fun p -> Printf.bprintf buf "%.9f %d\n" p.Packet.ts p.Packet.size)
        f.Flow.packets)
    flows;
  Buffer.contents buf

let fail_at line_no fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Trace: line %d: %s" line_no msg))
    fmt

let of_string text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let n_lines = Array.length lines in
  if n_lines = 0 || String.trim lines.(0) <> header then
    invalid_arg "Trace: missing header line";
  let flows = ref [] in
  let rec parse pos =
    if pos >= n_lines then ()
    else if String.trim lines.(pos) = "" then parse (pos + 1)
    else begin
      let line_no = pos + 1 in
      let parts =
        String.split_on_char ' ' (String.trim lines.(pos))
        |> List.filter (fun s -> s <> "")
      in
      match parts with
      | [ "flow"; id; label; app; count ] ->
        let id =
          match int_of_string_opt id with
          | Some v -> v
          | None -> fail_at line_no "bad flow id %S" id
        in
        let label =
          match label with
          | "benign" -> Flow.Benign
          | "botnet" -> Flow.Botnet
          | other -> fail_at line_no "unknown label %S" other
        in
        let count =
          match int_of_string_opt count with
          | Some v when v > 0 -> v
          | Some _ | None -> fail_at line_no "bad packet count %S" count
        in
          if pos + count >= n_lines then
            fail_at line_no "truncated flow (%d packets declared)" count;
          let packets =
            Array.init count (fun i ->
                let pkt_line_no = line_no + 1 + i in
                let pkt_line = String.trim lines.(pos + 1 + i) in
                match
                  String.split_on_char ' ' pkt_line
                  |> List.filter (fun s -> s <> "")
                with
                | [ ts; size ] -> (
                    match (float_of_string_opt ts, int_of_string_opt size) with
                    | Some ts, Some size -> Packet.make ~ts ~size
                    | _ -> fail_at pkt_line_no "bad packet %S" pkt_line)
                | _ -> fail_at pkt_line_no "bad packet %S" pkt_line)
          in
          flows := Flow.make ~id ~label ~app ~packets :: !flows;
          parse (pos + 1 + count)
      | _ -> fail_at line_no "expected a flow record, found %S" lines.(pos)
    end
  in
  parse 1;
  Array.of_list (List.rev !flows)

let save ~path flows =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string flows))

let load ~path = of_string (In_channel.with_open_text path In_channel.input_all)
