type label = Benign | Botnet

let label_to_int = function Benign -> 0 | Botnet -> 1
let label_to_string = function Benign -> "benign" | Botnet -> "botnet"

type t = {
  id : int;
  label : label;
  app : string;
  packets : Packet.t array;
}

let make ~id ~label ~app ~packets =
  if Array.length packets = 0 then invalid_arg "Flow.make: empty packet train";
  let packets = Array.copy packets in
  Array.sort (fun a b -> compare a.Packet.ts b.Packet.ts) packets;
  { id; label; app; packets }

let n_packets t = Array.length t.packets
let duration t = Packet.duration t.packets
let total_bytes t = Packet.total_bytes t.packets

let mean_packet_size t =
  float_of_int (total_bytes t) /. float_of_int (n_packets t)

let mean_inter_arrival t =
  let gaps = Packet.inter_arrival_times t.packets in
  if Array.length gaps = 0 then 0. else Homunculus_util.Stats.mean gaps

let flowmarker t ~pl_spec ~ipt_spec ?first_packets () =
  let k =
    match first_packets with
    | None -> n_packets t
    | Some k ->
        if k <= 0 then invalid_arg "Flow.flowmarker: first_packets <= 0";
        Stdlib.min k (n_packets t)
  in
  let prefix = Array.sub t.packets 0 k in
  let pl = Histogram.create pl_spec in
  Array.iter (fun p -> Histogram.add pl (float_of_int p.Packet.size)) prefix;
  let ipt = Histogram.create ipt_spec in
  Histogram.add_all ipt (Packet.inter_arrival_times prefix);
  Array.append (Histogram.normalized pl) (Histogram.normalized ipt)
