(** Botnet-detection datasets built from the flow simulator (the paper's BD
    application, after FlowLens/PeerRush).

    Training samples are *full-flow* flowmarker histograms; test samples are
    *per-packet partial* flowmarkers (prefixes of the packet train), exactly
    the protocol of §5.1: "training was done on full flow-level histograms,
    while the F1 scores are reported on the per-packet-level partial
    histograms". Labels: 0 = benign, 1 = botnet. *)

val pl_spec_full : Histogram.spec
(** 92 bins x 16 B — the fine-grained FlowLens packet-length marker. *)

val ipt_spec_full : Histogram.spec
(** 59 bins x 4 s. Together with [pl_spec_full]: 151 features, the original
    FlowLens flowmarker size quoted by the paper. *)

val pl_spec_fused : Histogram.spec
(** 23 bins x 64 B — the paper's reduced marker. *)

val ipt_spec_fused : Histogram.spec
(** 7 bins x ~34 s. Together with [pl_spec_fused]: 30 features. *)

type bins = Full | Fused

val n_features : bins -> int
(** 151 for [Full], 30 for [Fused]. *)

val feature_names : bins -> string array

val flow_features : bins -> Flow.t -> ?first_packets:int -> unit -> float array
(** Flowmarker of (a prefix of) one flow under the chosen binning. *)

val generate :
  Homunculus_util.Rng.t ->
  ?n_train_flows:int ->
  ?n_test_flows:int ->
  ?bins:bins ->
  ?prefixes_per_flow:int ->
  unit ->
  Homunculus_ml.Dataset.t * Homunculus_ml.Dataset.t
(** Defaults: 300 train flows, 120 test flows, [Fused] bins, 12 prefix
    lengths per test flow (log-spaced from 2 packets to the full train). *)
