type t = { ts : float; size : int }

let make ~ts ~size =
  if ts < 0. then invalid_arg "Packet.make: negative timestamp";
  if size <= 0 then invalid_arg "Packet.make: non-positive size";
  { ts; size }

let inter_arrival_times packets =
  let n = Array.length packets in
  if n < 2 then [||]
  else Array.init (n - 1) (fun i -> packets.(i + 1).ts -. packets.(i).ts)

let total_bytes packets =
  Array.fold_left (fun acc p -> acc + p.size) 0 packets

let duration packets =
  let n = Array.length packets in
  if n < 2 then 0. else packets.(n - 1).ts -. packets.(0).ts
