type key = { src : int; dst : int; src_port : int; dst_port : int; proto : int }

let key_of_ints src dst = { src; dst; src_port = 0; dst_port = 0; proto = 0 }

type slot = { mutable owner : key option; bins : float array }

type t = {
  slots : slot array;
  marker_bins : int;
  mutable evictions : int;
}

(* splitmix64-style avalanche over the 5-tuple; deterministic across runs
   and well mixed even for sequential addresses. *)
let mix v =
  let v = (v lxor (v lsr 30)) * 0x4be98134a5976fd3 in
  let v = (v lxor (v lsr 27)) * 0x3bbf2a01355f8c4d in
  v lxor (v lsr 31)

let hash_key k =
  let h =
    List.fold_left
      (fun acc v -> mix (acc lxor mix v))
      0x51ed270b (* arbitrary non-zero seed *)
      [ k.src; k.dst; k.src_port; k.dst_port; k.proto ]
  in
  h land max_int

let create ~sram_bytes ~marker_bins ?(bytes_per_bin = 2) () =
  if sram_bytes <= 0 || marker_bins <= 0 || bytes_per_bin <= 0 then
    invalid_arg "Flow_table.create: non-positive sizes";
  let slot_bytes = marker_bins * bytes_per_bin in
  let capacity = sram_bytes / slot_bytes in
  if capacity <= 0 then invalid_arg "Flow_table.create: no slot fits the SRAM";
  {
    slots =
      Array.init capacity (fun _ -> { owner = None; bins = Array.make marker_bins 0. });
    marker_bins;
    evictions = 0;
  }

let capacity t = Array.length t.slots

let slot_of t key = t.slots.(hash_key key mod Array.length t.slots)

let record t key ~value ~bin =
  if bin < 0 || bin >= t.marker_bins then invalid_arg "Flow_table.record: bad bin";
  let slot = slot_of t key in
  (match slot.owner with
  | Some owner when owner = key -> ()
  | Some _ ->
      t.evictions <- t.evictions + 1;
      Array.fill slot.bins 0 t.marker_bins 0.;
      slot.owner <- Some key
  | None -> slot.owner <- Some key);
  slot.bins.(bin) <- slot.bins.(bin) +. value

let marker t key =
  let slot = slot_of t key in
  match slot.owner with
  | Some owner when owner = key -> Some (Array.copy slot.bins)
  | Some _ | None -> None

let active_flows t =
  Array.fold_left
    (fun acc slot -> match slot.owner with Some _ -> acc + 1 | None -> acc)
    0 t.slots

let evictions t = t.evictions

let stress t ~n_flows ~touches_per_flow =
  if n_flows <= 0 || touches_per_flow <= 0 then
    invalid_arg "Flow_table.stress: non-positive counts";
  let keys = Array.init n_flows (fun i -> key_of_ints i (i * 31)) in
  for _round = 1 to touches_per_flow do
    Array.iter (fun key -> record t key ~value:1. ~bin:0) keys
  done;
  let intact = ref 0 in
  Array.iter
    (fun key ->
      match marker t key with
      | Some bins when bins.(0) = float_of_int touches_per_flow -> incr intact
      | Some _ | None -> ())
    keys;
  float_of_int !intact /. float_of_int n_flows
