module Rng = Homunculus_util.Rng
module Dataset = Homunculus_ml.Dataset

let pl_spec_full = Histogram.spec ~n_bins:92 ~bin_width:16.
let ipt_spec_full = Histogram.spec ~n_bins:59 ~bin_width:4.
let pl_spec_fused = Histogram.spec ~n_bins:23 ~bin_width:64.
let ipt_spec_fused = Histogram.spec ~n_bins:7 ~bin_width:34.

type bins = Full | Fused

let specs = function
  | Full -> (pl_spec_full, ipt_spec_full)
  | Fused -> (pl_spec_fused, ipt_spec_fused)

let n_features bins =
  let pl, ipt = specs bins in
  pl.Histogram.n_bins + ipt.Histogram.n_bins

let feature_names bins =
  let pl, ipt = specs bins in
  Array.append
    (Array.init pl.Histogram.n_bins (fun i -> Printf.sprintf "pl_bin%d" i))
    (Array.init ipt.Histogram.n_bins (fun i -> Printf.sprintf "ipt_bin%d" i))

let flow_features bins flow ?first_packets () =
  let pl_spec, ipt_spec = specs bins in
  Flow.flowmarker flow ~pl_spec ~ipt_spec ?first_packets ()

(* Log-spaced prefix lengths from 2 packets up to the full flow, so early
   reaction times are well represented in the test set. *)
let prefix_lengths ~n_packets ~count =
  if n_packets <= 2 then [ n_packets ]
  else begin
    let lo = log 2. and hi = log (float_of_int n_packets) in
    let raw =
      List.init count (fun i ->
          let f = float_of_int i /. float_of_int (Stdlib.max 1 (count - 1)) in
          int_of_float (Float.round (exp (lo +. (f *. (hi -. lo))))))
    in
    List.sort_uniq compare raw
  end

let generate rng ?(n_train_flows = 300) ?(n_test_flows = 120) ?(bins = Fused)
    ?(prefixes_per_flow = 12) () =
  if n_train_flows <= 0 || n_test_flows <= 0 then
    invalid_arg "Botnet.generate: non-positive flow counts";
  let mix total = { Flowsim.default_mix with Flowsim.n_flows = total } in
  let train_flows = Flowsim.generate rng ~mix:(mix n_train_flows) () in
  let test_flows = Flowsim.generate rng ~mix:(mix n_test_flows) () in
  let names = feature_names bins in
  let train_x = Array.map (fun f -> flow_features bins f ()) train_flows in
  let train_y =
    Array.map (fun f -> Flow.label_to_int f.Flow.label) train_flows
  in
  let test_samples =
    Array.to_list test_flows
    |> List.concat_map (fun f ->
           let lengths =
             prefix_lengths ~n_packets:(Flow.n_packets f) ~count:prefixes_per_flow
           in
           List.map
             (fun k ->
               ( flow_features bins f ~first_packets:k (),
                 Flow.label_to_int f.Flow.label ))
             lengths)
  in
  let train =
    Dataset.create ~feature_names:names ~x:train_x ~y:train_y ~n_classes:2 ()
  in
  let test =
    Dataset.create ~feature_names:names
      ~x:(Array.of_list (List.map fst test_samples))
      ~y:(Array.of_list (List.map snd test_samples))
      ~n_classes:2 ()
  in
  (train, test)
