lib/netdata/reaction.ml: Array Botnet Flow Format Homunculus_ml Homunculus_util List Packet
