lib/netdata/flow.mli: Histogram Packet
