lib/netdata/histogram.mli:
