lib/netdata/packet.mli:
