lib/netdata/botnet.mli: Flow Histogram Homunculus_ml Homunculus_util
