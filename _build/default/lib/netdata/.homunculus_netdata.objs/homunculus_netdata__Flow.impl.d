lib/netdata/flow.ml: Array Histogram Homunculus_util Packet Stdlib
