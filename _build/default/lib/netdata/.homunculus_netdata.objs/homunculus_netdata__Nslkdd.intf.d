lib/netdata/nslkdd.mli: Homunculus_ml Homunculus_util
