lib/netdata/trace.ml: Array Buffer Flow In_channel List Out_channel Packet Printf String
