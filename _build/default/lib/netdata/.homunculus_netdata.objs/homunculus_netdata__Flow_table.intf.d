lib/netdata/flow_table.mli:
