lib/netdata/botnet.ml: Array Float Flow Flowsim Histogram Homunculus_ml Homunculus_util List Printf Stdlib
