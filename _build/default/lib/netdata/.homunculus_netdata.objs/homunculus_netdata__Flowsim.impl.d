lib/netdata/flowsim.ml: Array Flow Histogram Homunculus_util List Packet Stdlib
