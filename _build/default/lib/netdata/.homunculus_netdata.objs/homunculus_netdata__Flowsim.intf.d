lib/netdata/flowsim.mli: Flow Histogram Homunculus_util
