lib/netdata/trace.mli: Flow
