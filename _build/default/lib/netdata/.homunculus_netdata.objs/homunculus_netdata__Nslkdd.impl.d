lib/netdata/nslkdd.ml: Array Homunculus_ml Homunculus_util Stdlib
