lib/netdata/packet.ml: Array
