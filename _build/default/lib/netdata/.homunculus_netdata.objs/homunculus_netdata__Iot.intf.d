lib/netdata/iot.mli: Homunculus_ml Homunculus_util
