lib/netdata/reaction.mli: Botnet Flow Format
