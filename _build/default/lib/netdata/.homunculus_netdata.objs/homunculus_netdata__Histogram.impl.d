lib/netdata/histogram.ml: Array Float Homunculus_util
