lib/netdata/iot.ml: Array Float Homunculus_ml Homunculus_util Stdlib
