lib/netdata/flow_table.ml: Array List
