(** Persisting flow traces.

    The paper's datasets are packet traces on disk (NSL-KDD files, PeerRush
    captures); this module gives the synthetic traces the same property so
    experiments can be re-run against frozen inputs. The format is a plain
    line-oriented text file:

    {v
    # homunculus-trace v1
    flow <id> <benign|botnet> <app> <n_packets>
    <ts_seconds> <size_bytes>
    ...
    v} *)

val to_string : Flow.t array -> string

val of_string : string -> Flow.t array
(** @raise Invalid_argument on malformed input (with a line number). *)

val save : path:string -> Flow.t array -> unit
val load : path:string -> Flow.t array
(** @raise Sys_error on I/O failure. *)
