module Stats = Homunculus_util.Stats
module Metrics = Homunculus_ml.Metrics

type curve_point = { packets_seen : int; f1 : float; n_flows : int }

let detection_curve ~classify ~bins ~prefix_lengths flows =
  List.map
    (fun k ->
      let eligible =
        Array.to_list flows |> List.filter (fun f -> Flow.n_packets f >= k)
      in
      let pred, truth =
        List.split
          (List.map
             (fun f ->
               ( classify (Botnet.flow_features bins f ~first_packets:k ()),
                 Flow.label_to_int f.Flow.label ))
             eligible)
      in
      let f1 =
        if pred = [] then 0.
        else
          Metrics.f1 ~pred:(Array.of_list pred) ~truth:(Array.of_list truth) ()
      in
      { packets_seen = k; f1; n_flows = List.length eligible })
    prefix_lengths

type reaction = {
  flow_id : int;
  packets_to_verdict : int option;
  seconds_to_verdict : float option;
}

let reaction_times ~classify ~bins ?(confirm = 2) flows =
  if confirm <= 0 then invalid_arg "Reaction.reaction_times: confirm <= 0";
  Array.to_list flows
  |> List.filter (fun f -> f.Flow.label = Flow.Botnet)
  |> List.map (fun f ->
         let n = Flow.n_packets f in
         let rec scan k streak =
           if k > n then None
           else
             let verdict =
               classify (Botnet.flow_features bins f ~first_packets:k ())
             in
             if verdict = Flow.label_to_int Flow.Botnet then
               if streak + 1 >= confirm then Some k else scan (k + 1) (streak + 1)
             else scan (k + 1) 0
         in
         match scan 2 0 with
         | Some k ->
             {
               flow_id = f.Flow.id;
               packets_to_verdict = Some k;
               seconds_to_verdict = Some f.Flow.packets.(k - 1).Packet.ts;
             }
         | None ->
             { flow_id = f.Flow.id; packets_to_verdict = None; seconds_to_verdict = None })

type summary = {
  n_flows : int;
  detected : int;
  detection_rate : float;
  mean_packets : float;
  median_seconds : float;
  p95_seconds : float;
}

let summarize reactions =
  if reactions = [] then invalid_arg "Reaction.summarize: empty input";
  let detected =
    List.filter_map
      (fun r ->
        match (r.packets_to_verdict, r.seconds_to_verdict) with
        | Some p, Some s -> Some (p, s)
        | _ -> None)
      reactions
  in
  let n_flows = List.length reactions in
  let n_detected = List.length detected in
  if n_detected = 0 then
    {
      n_flows;
      detected = 0;
      detection_rate = 0.;
      mean_packets = 0.;
      median_seconds = 0.;
      p95_seconds = 0.;
    }
  else
    let packets = Array.of_list (List.map (fun (p, _) -> float_of_int p) detected) in
    let seconds = Array.of_list (List.map snd detected) in
    {
      n_flows;
      detected = n_detected;
      detection_rate = float_of_int n_detected /. float_of_int n_flows;
      mean_packets = Stats.mean packets;
      median_seconds = Stats.median seconds;
      p95_seconds = Stats.percentile seconds 95.;
    }

let pp_summary fmt s =
  Format.fprintf fmt
    "%d/%d botnet flows detected (%.0f%%); mean %.1f packets to verdict; \
     median %.1f s, p95 %.1f s"
    s.detected s.n_flows (100. *. s.detection_rate) s.mean_packets
    s.median_seconds s.p95_seconds
