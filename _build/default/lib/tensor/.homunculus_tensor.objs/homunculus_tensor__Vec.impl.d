lib/tensor/vec.ml: Array Format Homunculus_util
