lib/tensor/mat.ml: Array Format
