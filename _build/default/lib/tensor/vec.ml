type t = float array

let create n = Array.make n 0.
let init = Array.init
let of_array a = a
let copy = Array.copy
let dim = Array.length
let fill v x = Array.fill v 0 (Array.length v) x

let check_same_dim name a b =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let dot a b =
  check_same_dim "Vec.dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let map2 f a b =
  check_same_dim "Vec.map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let scale alpha a = Array.map (fun x -> alpha *. x) a

let axpy ~alpha ~x ~y =
  check_same_dim "Vec.axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let add_in_place dst src =
  check_same_dim "Vec.add_in_place" dst src;
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) +. src.(i)
  done

let map = Array.map
let mapi = Array.mapi

let norm2 a = sqrt (dot a a)

let sq_dist a b =
  check_same_dim "Vec.sq_dist" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let sum = Array.fold_left ( +. ) 0.

let argmax v = Homunculus_util.Stats.argmax v

let concat = Array.append

let pp fmt v =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" x)
    v;
  Format.fprintf fmt "|]"
