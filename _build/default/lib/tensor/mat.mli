(** Dense row-major float matrices. *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t
(** @raise Invalid_argument on ragged or empty input. *)

val copy : t -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> Vec.t
(** Fresh copy of a row. *)

val col : t -> int -> Vec.t
(** Fresh copy of a column. *)

val transpose : t -> t
val matvec : t -> Vec.t -> Vec.t
(** [matvec m v] with [dim v = m.cols]; result has [m.rows] entries. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t m v] computes [transpose m * v] without materializing the
    transpose; [dim v = m.rows]. *)

val matmul : t -> t -> t
val add : t -> t -> t
val scale : float -> t -> t
val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y <- alpha * x + y]. *)

val map : (float -> float) -> t -> t
val frobenius : t -> float
val outer : Vec.t -> Vec.t -> t
(** [outer u v] has shape [dim u * dim v]. *)

val outer_accum : alpha:float -> u:Vec.t -> v:Vec.t -> acc:t -> unit
(** In-place rank-1 update [acc <- acc + alpha * u v^T]. *)

val n_elements : t -> int
val pp : Format.formatter -> t -> unit
