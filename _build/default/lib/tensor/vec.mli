(** Dense float vectors.

    A thin layer over [float array] that names the linear-algebra operations
    the ML framework needs. All binary operations require equal lengths and
    raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** Zero vector. *)

val init : int -> (int -> float) -> t
val of_array : float array -> t
val copy : t -> t
val dim : t -> int

val fill : t -> float -> unit

val dot : t -> t -> float
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Element-wise (Hadamard) product. *)

val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y <- alpha * x + y]. *)

val add_in_place : t -> t -> unit
(** [add_in_place dst src] is [dst <- dst + src]. *)

val map : (float -> float) -> t -> t
val mapi : (int -> float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val norm2 : t -> float
(** Euclidean norm. *)

val sq_dist : t -> t -> float
(** Squared Euclidean distance. *)

val sum : t -> float
val argmax : t -> int

val concat : t -> t -> t

val pp : Format.formatter -> t -> unit
