type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Mat.of_rows: empty input";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let matvec m v =
  if Array.length v <> m.cols then invalid_arg "Mat.matvec: dimension mismatch";
  let out = Array.make m.rows 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. v.(j))
    done;
    out.(i) <- !acc
  done;
  out

let matvec_t m v =
  if Array.length v <> m.rows then invalid_arg "Mat.matvec_t: dimension mismatch";
  let out = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let vi = v.(i) in
    if vi <> 0. then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (m.data.(base + j) *. vi)
      done
  done;
  out

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: dimension mismatch";
  let out = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          set out i j (get out i j +. (aik *. get b k j))
        done
    done
  done;
  out

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": shape mismatch")

let add a b =
  check_same_shape "Mat.add" a b;
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) +. b.data.(i)) }

let scale alpha m = { m with data = Array.map (fun x -> alpha *. x) m.data }

let axpy ~alpha ~x ~y =
  check_same_shape "Mat.axpy" x y;
  for i = 0 to Array.length x.data - 1 do
    y.data.(i) <- (alpha *. x.data.(i)) +. y.data.(i)
  done

let map f m = { m with data = Array.map f m.data }

let frobenius m = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0. m.data)

let outer u v =
  init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let outer_accum ~alpha ~u ~v ~acc =
  if Array.length u <> acc.rows || Array.length v <> acc.cols then
    invalid_arg "Mat.outer_accum: shape mismatch";
  for i = 0 to acc.rows - 1 do
    let base = i * acc.cols in
    let s = alpha *. u.(i) in
    if s <> 0. then
      for j = 0 to acc.cols - 1 do
        acc.data.(base + j) <- acc.data.(base + j) +. (s *. v.(j))
      done
  done

let n_elements m = m.rows * m.cols

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%8.4f" (get m i j)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
